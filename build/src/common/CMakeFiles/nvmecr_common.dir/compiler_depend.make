# Empty compiler generated dependencies file for nvmecr_common.
# This may be replaced when dependencies are built.
