file(REMOVE_RECURSE
  "libnvmecr_kernelfs.a"
)
