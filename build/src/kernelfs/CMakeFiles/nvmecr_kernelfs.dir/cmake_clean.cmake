file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_kernelfs.dir/localfs.cc.o"
  "CMakeFiles/nvmecr_kernelfs.dir/localfs.cc.o.d"
  "libnvmecr_kernelfs.a"
  "libnvmecr_kernelfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_kernelfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
