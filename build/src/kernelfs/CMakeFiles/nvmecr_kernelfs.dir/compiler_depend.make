# Empty compiler generated dependencies file for nvmecr_kernelfs.
# This may be replaced when dependencies are built.
