file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_simcore.dir/engine.cc.o"
  "CMakeFiles/nvmecr_simcore.dir/engine.cc.o.d"
  "CMakeFiles/nvmecr_simcore.dir/trace.cc.o"
  "CMakeFiles/nvmecr_simcore.dir/trace.cc.o.d"
  "libnvmecr_simcore.a"
  "libnvmecr_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
