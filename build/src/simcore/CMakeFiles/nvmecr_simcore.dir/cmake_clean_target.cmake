file(REMOVE_RECURSE
  "libnvmecr_simcore.a"
)
