# Empty compiler generated dependencies file for nvmecr_simcore.
# This may be replaced when dependencies are built.
