file(REMOVE_RECURSE
  "libnvmecr_workloads.a"
)
