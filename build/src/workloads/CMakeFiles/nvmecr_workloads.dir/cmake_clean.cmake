file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_workloads.dir/comd.cc.o"
  "CMakeFiles/nvmecr_workloads.dir/comd.cc.o.d"
  "libnvmecr_workloads.a"
  "libnvmecr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
