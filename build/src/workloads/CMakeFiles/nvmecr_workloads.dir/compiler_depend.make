# Empty compiler generated dependencies file for nvmecr_workloads.
# This may be replaced when dependencies are built.
