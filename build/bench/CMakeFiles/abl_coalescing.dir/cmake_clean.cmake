file(REMOVE_RECURSE
  "CMakeFiles/abl_coalescing.dir/abl_coalescing.cc.o"
  "CMakeFiles/abl_coalescing.dir/abl_coalescing.cc.o.d"
  "abl_coalescing"
  "abl_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
