# Empty compiler generated dependencies file for fig07b_load_balance.
# This may be replaced when dependencies are built.
