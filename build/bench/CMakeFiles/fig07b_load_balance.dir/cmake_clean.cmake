file(REMOVE_RECURSE
  "CMakeFiles/fig07b_load_balance.dir/fig07b_load_balance.cc.o"
  "CMakeFiles/fig07b_load_balance.dir/fig07b_load_balance.cc.o.d"
  "fig07b_load_balance"
  "fig07b_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
