# Empty compiler generated dependencies file for ext_n1_pattern.
# This may be replaced when dependencies are built.
