file(REMOVE_RECURSE
  "CMakeFiles/ext_n1_pattern.dir/ext_n1_pattern.cc.o"
  "CMakeFiles/ext_n1_pattern.dir/ext_n1_pattern.cc.o.d"
  "ext_n1_pattern"
  "ext_n1_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_n1_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
