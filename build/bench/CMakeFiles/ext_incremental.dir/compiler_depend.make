# Empty compiler generated dependencies file for ext_incremental.
# This may be replaced when dependencies are built.
