file(REMOVE_RECURSE
  "CMakeFiles/ext_incremental.dir/ext_incremental.cc.o"
  "CMakeFiles/ext_incremental.dir/ext_incremental.cc.o.d"
  "ext_incremental"
  "ext_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
