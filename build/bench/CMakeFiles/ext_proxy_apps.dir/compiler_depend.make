# Empty compiler generated dependencies file for ext_proxy_apps.
# This may be replaced when dependencies are built.
