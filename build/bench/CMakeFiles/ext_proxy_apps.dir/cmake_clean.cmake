file(REMOVE_RECURSE
  "CMakeFiles/ext_proxy_apps.dir/ext_proxy_apps.cc.o"
  "CMakeFiles/ext_proxy_apps.dir/ext_proxy_apps.cc.o.d"
  "ext_proxy_apps"
  "ext_proxy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_proxy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
