# Empty compiler generated dependencies file for ext_deltafs.
# This may be replaced when dependencies are built.
