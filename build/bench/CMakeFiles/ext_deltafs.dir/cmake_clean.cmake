file(REMOVE_RECURSE
  "CMakeFiles/ext_deltafs.dir/ext_deltafs.cc.o"
  "CMakeFiles/ext_deltafs.dir/ext_deltafs.cc.o.d"
  "ext_deltafs"
  "ext_deltafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deltafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
