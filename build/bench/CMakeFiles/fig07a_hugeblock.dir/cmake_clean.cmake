file(REMOVE_RECURSE
  "CMakeFiles/fig07a_hugeblock.dir/fig07a_hugeblock.cc.o"
  "CMakeFiles/fig07a_hugeblock.dir/fig07a_hugeblock.cc.o.d"
  "fig07a_hugeblock"
  "fig07a_hugeblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_hugeblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
