# Empty compiler generated dependencies file for fig07a_hugeblock.
# This may be replaced when dependencies are built.
