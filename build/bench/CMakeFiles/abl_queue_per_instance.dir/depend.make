# Empty dependencies file for abl_queue_per_instance.
# This may be replaced when dependencies are built.
