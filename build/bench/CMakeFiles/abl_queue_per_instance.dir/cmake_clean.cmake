file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_per_instance.dir/abl_queue_per_instance.cc.o"
  "CMakeFiles/abl_queue_per_instance.dir/abl_queue_per_instance.cc.o.d"
  "abl_queue_per_instance"
  "abl_queue_per_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_per_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
