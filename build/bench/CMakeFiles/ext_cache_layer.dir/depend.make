# Empty dependencies file for ext_cache_layer.
# This may be replaced when dependencies are built.
