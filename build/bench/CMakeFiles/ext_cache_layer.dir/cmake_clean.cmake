file(REMOVE_RECURSE
  "CMakeFiles/ext_cache_layer.dir/ext_cache_layer.cc.o"
  "CMakeFiles/ext_cache_layer.dir/ext_cache_layer.cc.o.d"
  "ext_cache_layer"
  "ext_cache_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cache_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
