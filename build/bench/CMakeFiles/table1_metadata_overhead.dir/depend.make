# Empty dependencies file for table1_metadata_overhead.
# This may be replaced when dependencies are built.
