file(REMOVE_RECURSE
  "CMakeFiles/fig07c_direct_access.dir/fig07c_direct_access.cc.o"
  "CMakeFiles/fig07c_direct_access.dir/fig07c_direct_access.cc.o.d"
  "fig07c_direct_access"
  "fig07c_direct_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07c_direct_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
