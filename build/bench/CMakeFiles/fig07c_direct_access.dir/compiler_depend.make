# Empty compiler generated dependencies file for fig07c_direct_access.
# This may be replaced when dependencies are built.
