file(REMOVE_RECURSE
  "CMakeFiles/fig07d_drilldown.dir/fig07d_drilldown.cc.o"
  "CMakeFiles/fig07d_drilldown.dir/fig07d_drilldown.cc.o.d"
  "fig07d_drilldown"
  "fig07d_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07d_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
