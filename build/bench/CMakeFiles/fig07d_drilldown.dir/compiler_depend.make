# Empty compiler generated dependencies file for fig07d_drilldown.
# This may be replaced when dependencies are built.
