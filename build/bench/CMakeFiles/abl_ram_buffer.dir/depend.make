# Empty dependencies file for abl_ram_buffer.
# This may be replaced when dependencies are built.
