file(REMOVE_RECURSE
  "CMakeFiles/abl_ram_buffer.dir/abl_ram_buffer.cc.o"
  "CMakeFiles/abl_ram_buffer.dir/abl_ram_buffer.cc.o.d"
  "abl_ram_buffer"
  "abl_ram_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ram_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
