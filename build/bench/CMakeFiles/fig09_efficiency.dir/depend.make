# Empty dependencies file for fig09_efficiency.
# This may be replaced when dependencies are built.
