file(REMOVE_RECURSE
  "CMakeFiles/fig08a_nvmf_overhead.dir/fig08a_nvmf_overhead.cc.o"
  "CMakeFiles/fig08a_nvmf_overhead.dir/fig08a_nvmf_overhead.cc.o.d"
  "fig08a_nvmf_overhead"
  "fig08a_nvmf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_nvmf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
