# Empty compiler generated dependencies file for fig08a_nvmf_overhead.
# This may be replaced when dependencies are built.
