file(REMOVE_RECURSE
  "CMakeFiles/table2_multilevel.dir/table2_multilevel.cc.o"
  "CMakeFiles/table2_multilevel.dir/table2_multilevel.cc.o.d"
  "table2_multilevel"
  "table2_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
