# Empty compiler generated dependencies file for table2_multilevel.
# This may be replaced when dependencies are built.
