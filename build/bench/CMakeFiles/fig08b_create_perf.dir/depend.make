# Empty dependencies file for fig08b_create_perf.
# This may be replaced when dependencies are built.
