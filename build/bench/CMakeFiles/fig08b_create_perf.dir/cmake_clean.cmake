file(REMOVE_RECURSE
  "CMakeFiles/fig08b_create_perf.dir/fig08b_create_perf.cc.o"
  "CMakeFiles/fig08b_create_perf.dir/fig08b_create_perf.cc.o.d"
  "fig08b_create_perf"
  "fig08b_create_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_create_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
