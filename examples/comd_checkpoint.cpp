// CoMD checkpointing on a disaggregated cluster — the paper's headline
// scenario end-to-end: the scheduler hands the job NVMe namespaces on
// the storage rack, the balancer maps ranks to partner-domain SSDs, each
// rank's runtime instance mounts its private partition over NVMf, and
// the CoMD proxy runs its compute/checkpoint loop with a restart phase.
//
// Run:  ./build/examples/comd_checkpoint
//         [--trace out.trace.json]   Perfetto trace of the whole pipeline
//         [--metrics out.csv]        metrics registry snapshot (CSV/JSON)
#include <cstdio>

#include "baselines/models.h"
#include "metrics/report.h"
#include "nvmecr/runtime.h"
#include "obs/run_report.h"
#include "workloads/comd.h"

using namespace nvmecr;
using namespace nvmecr::literals;

int main(int argc, char** argv) {
  obs::RunReport report = obs::RunReport::from_args(argc, argv);

  // The paper's testbed: 16 compute nodes (28 cores), 8 storage nodes
  // with one P4800X-class SSD each, EDR InfiniBand (§IV-A).
  nvmecr_rt::Cluster cluster;
  cluster.install_observer(report.observer());
  nvmecr_rt::Scheduler scheduler(cluster);

  // A 112-rank job; the process:SSD guidance (56-112 per SSD, §III-F)
  // sizes the allocation at two SSDs.
  workloads::ComdParams params;
  params.nranks = 112;
  params.procs_per_node = 28;
  params.atoms_per_rank = 32768;
  params.bytes_per_atom = 2048;  // 64 MiB checkpoint per rank
  params.checkpoints = 5;
  params.compute_per_period = 800 * kMillisecond;

  auto job = scheduler.allocate(params.nranks, params.procs_per_node,
                                /*partition_bytes=*/512_MiB);
  NVMECR_CHECK(job.ok());
  std::printf("scheduler: %zu SSD(s) allocated, %u ranks per SSD, "
              "%llu MiB partition per rank\n",
              job->assignment.ssd_nodes.size(),
              job->assignment.ranks_per_ssd[0],
              static_cast<unsigned long long>(job->partition_bytes >> 20));

  nvmecr_rt::RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 128;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);

  auto metrics = workloads::ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(metrics.ok());

  std::printf("\nCoMD run (%u ranks, %u checkpoints of %.1f GiB):\n",
              params.nranks, params.checkpoints,
              to_gib(params.job_checkpoint_bytes()));
  for (size_t i = 0; i < metrics->checkpoint_times.size(); ++i) {
    std::printf("  checkpoint %zu: %.3f s\n", i,
                to_seconds(metrics->checkpoint_times[i]));
  }
  std::printf("  checkpoint efficiency: %.3f (perceived BW / HW peak)\n",
              metrics->checkpoint_efficiency());
  std::printf("  restart read:          %.3f s (efficiency %.3f)\n",
              to_seconds(metrics->recovery_time),
              metrics->recovery_efficiency());
  std::printf("  application progress rate: %.3f\n",
              metrics->progress_rate());
  std::printf("  per-SSD load CoV: %.4f (round-robin balancer)\n",
              metrics->load_cov());

  // The metrics module renders the same run as a uniform table + CSV.
  metrics::ScalingReport summary("comd_checkpoint summary");
  summary.add("112 ranks / 2 SSDs", *metrics);
  summary.print_table();
  if (summary.write_csv("comd_checkpoint.csv")) {
    std::printf("(metrics also written to comd_checkpoint.csv)\n");
  }

  scheduler.release(*job);
  std::printf("job released; namespaces returned to the scheduler\n");
  report.finish();
  return 0;
}
