// CoMD checkpointing on a disaggregated cluster — the paper's headline
// scenario end-to-end: the scheduler hands the job NVMe namespaces on
// the storage rack, the balancer maps ranks to partner-domain SSDs, each
// rank's runtime instance mounts its private partition over NVMf, and
// the CoMD proxy runs its compute/checkpoint loop with a restart phase.
//
// Run:  ./build/examples/comd_checkpoint
//         [--redundancy none|partner|xor]  mirror the fast tier into a
//                                          second failure domain
//         [--trace out.trace.json]   Perfetto trace of the whole pipeline
//         [--metrics out.csv]        metrics registry snapshot (CSV/JSON)
//         [--profile report.txt]     dispatch cost centers + per-epoch
//                                    critical-path drilldown ("-" = stdout)
//         [--flight N]               flight-recorder mode: retain only the
//                                    last N trace events
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/models.h"
#include "metrics/report.h"
#include "nvmecr/runtime.h"
#include "obs/run_report.h"
#include "redundancy/engine.h"
#include "workloads/comd.h"

using namespace nvmecr;
using namespace nvmecr::literals;

// CSV artifacts land in the build tree (set by examples/CMakeLists.txt),
// not whatever directory the binary was launched from.
#ifndef NVMECR_OUTPUT_DIR
#define NVMECR_OUTPUT_DIR "."
#endif

namespace {

redundancy::Scheme parse_redundancy_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--redundancy=", 0) == 0) {
      value = arg.substr(std::strlen("--redundancy="));
    } else if (arg == "--redundancy" && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      continue;
    }
    auto scheme = redundancy::parse_scheme(value);
    if (!scheme.has_value()) {
      std::fprintf(stderr,
                   "unknown --redundancy '%s' (want none|partner|xor)\n",
                   value.c_str());
      std::exit(2);
    }
    return *scheme;
  }
  return redundancy::Scheme::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  obs::RunReport report = obs::RunReport::from_args(argc, argv);
  const redundancy::Scheme scheme = parse_redundancy_flag(argc, argv);

  // The paper's testbed: 16 compute nodes (28 cores), 8 storage nodes
  // with one P4800X-class SSD each, EDR InfiniBand (§IV-A). Redundancy
  // needs distinct storage failure domains to place the second copy in,
  // so with a scheme enabled the 8 storage nodes span 8 racks instead of
  // the paper's single storage rack.
  nvmecr_rt::ClusterSpec spec;
  if (scheme != redundancy::Scheme::kNone) spec.storage_racks = 8;
  nvmecr_rt::Cluster cluster(spec);
  cluster.install_observer(report.observer());
  nvmecr_rt::Scheduler scheduler(cluster);

  // A 112-rank job; the process:SSD guidance (56-112 per SSD, §III-F)
  // sizes the allocation at two SSDs. XOR erasure sets of K=4 need the
  // primaries themselves spread over 4 domains, so that mode widens the
  // allocation to 4 SSDs.
  workloads::ComdParams params;
  params.nranks = 112;
  params.procs_per_node = 28;
  params.atoms_per_rank = 32768;
  params.bytes_per_atom = 2048;  // 64 MiB checkpoint per rank
  params.checkpoints = 5;
  params.compute_per_period = 800 * kMillisecond;

  redundancy::RedundancyOptions ropts;
  ropts.scheme = scheme;
  ropts.xor_set_size = 4;
  const uint32_t num_ssds =
      scheme == redundancy::Scheme::kXor ? ropts.xor_set_size : 0;

  auto job = scheduler.allocate(params.nranks, params.procs_per_node,
                                /*partition_bytes=*/512_MiB, num_ssds);
  NVMECR_CHECK(job.ok());
  std::printf("scheduler: %zu SSD(s) allocated, %u ranks per SSD, "
              "%llu MiB partition per rank\n",
              job->assignment.ssd_nodes.size(),
              job->assignment.ranks_per_ssd[0],
              static_cast<unsigned long long>(job->partition_bytes >> 20));

  nvmecr_rt::RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 128;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);

  // With a redundancy scheme the job talks to the wrapping system:
  // foreground IO hits the primary runtime while replica/parity streams
  // ride behind it into partner-domain SSDs.
  std::unique_ptr<redundancy::RedundantDeployment> dep;
  baselines::StorageSystem* target = &system;
  if (scheme != redundancy::Scheme::kNone) {
    auto d = redundancy::deploy_redundancy(cluster, scheduler, system, *job,
                                           ropts);
    NVMECR_CHECK(d.ok());
    dep = std::make_unique<redundancy::RedundantDeployment>(std::move(*d));
    target = dep->system.get();
    std::printf("redundancy: scheme=%s, %zu store SSD(s) for "
                "replica/parity data\n",
                redundancy::scheme_name(scheme),
                dep->plan.assignment.ssd_nodes.size());
  }

  auto metrics = workloads::ComdDriver::run(cluster, *target, params);
  NVMECR_CHECK(metrics.ok());
  if (dep != nullptr) {
    // Drain background replication/parity work so the overhead numbers
    // below cover every checkpoint of the run.
    cluster.engine().run_task(dep->system->quiesce());
  }

  std::printf("\nCoMD run (%u ranks, %u checkpoints of %.1f GiB):\n",
              params.nranks, params.checkpoints,
              to_gib(params.job_checkpoint_bytes()));
  for (size_t i = 0; i < metrics->checkpoint_times.size(); ++i) {
    std::printf("  checkpoint %zu: %.3f s\n", i,
                to_seconds(metrics->checkpoint_times[i]));
  }
  std::printf("  checkpoint efficiency: %.3f (perceived BW / HW peak)\n",
              metrics->checkpoint_efficiency());
  std::printf("  restart read:          %.3f s (efficiency %.3f)\n",
              to_seconds(metrics->recovery_time),
              metrics->recovery_efficiency());
  std::printf("  application progress rate: %.3f\n",
              metrics->progress_rate());
  std::printf("  per-SSD load CoV: %.4f (round-robin balancer)\n",
              metrics->load_cov());
  if (dep != nullptr) {
    const uint64_t payload =
        params.checkpoints * params.job_checkpoint_bytes();
    std::printf("  redundancy (%s): %.1f GiB redundant device bytes "
                "(%.1f%% write overhead), %llu degraded file(s)\n",
                redundancy::scheme_name(scheme),
                to_gib(dep->system->redundant_bytes()),
                100.0 * static_cast<double>(dep->system->redundant_bytes()) /
                    static_cast<double>(payload),
                static_cast<unsigned long long>(
                    dep->system->degraded_files()));
  }

  // The metrics module renders the same run as a uniform table + CSV.
  metrics::ScalingReport summary("comd_checkpoint summary");
  summary.add("112 ranks / 2 SSDs", *metrics);
  summary.print_table();
  const std::string csv_path =
      std::string(NVMECR_OUTPUT_DIR) + "/comd_checkpoint.csv";
  if (summary.write_csv(csv_path)) {
    std::printf("(metrics also written to %s)\n", csv_path.c_str());
  }

  if (dep != nullptr) {
    nvmecr_rt::JobAllocation store_job = dep->store_job;
    dep.reset();  // store clients/runtime close before release
    scheduler.release(store_job);
  }
  scheduler.release(*job);
  std::printf("job released; namespaces returned to the scheduler\n");
  report.finish();
  return 0;
}
