// Exhaustive crash-point exploration over a seeded microfs workload —
// the CI entry point of the crashsim harness (DESIGN.md §12).
//
// Records every persistence boundary of a format + seeded workload run,
// then for each boundary (and torn-write variant) materializes the
// frozen device state, recovers it, and checks the full fsck invariant
// set plus end-to-end content verification. Any violation prints the
// reproducing (seed, boundary, torn) triple and exits nonzero.
//
// Run:  ./build/examples/crash_explore --seed 1 --ops 64 \
//           --torn sampled --min-boundaries 100
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "crashsim/explore.h"
#include "crashsim/recorder.h"
#include "crashsim/workload.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

using namespace nvmecr;
using namespace nvmecr::literals;

namespace {

struct Cli {
  uint64_t seed = 1;
  uint32_t ops = 64;
  crashsim::ExploreOptions::Torn torn =
      crashsim::ExploreOptions::Torn::kSampled;
  size_t min_boundaries = 100;
  size_t max_states = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--ops N] "
               "[--torn none|sampled|exhaustive]\n"
               "          [--min-boundaries N] [--max-states N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--seed") == 0 && (v = next())) {
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--ops") == 0 && (v = next())) {
      cli.ops = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--min-boundaries") == 0 && (v = next())) {
      cli.min_boundaries = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--max-states") == 0 && (v = next())) {
      cli.max_states = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--torn") == 0 && (v = next())) {
      if (std::strcmp(v, "none") == 0) {
        cli.torn = crashsim::ExploreOptions::Torn::kNone;
      } else if (std::strcmp(v, "sampled") == 0) {
        cli.torn = crashsim::ExploreOptions::Torn::kSampled;
      } else if (std::strcmp(v, "exhaustive") == 0) {
        cli.torn = crashsim::ExploreOptions::Torn::kExhaustive;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  microfs::Options fsopts;
  fsopts.log_slots = 512;

  sim::Engine eng;
  hw::RamDevice ram(64_MiB, 4096);
  crashsim::RecordingDevice rec(ram);

  auto fs = eng.run_task(microfs::MicroFs::format(eng, rec, fsopts));
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed: %s\n",
                 fs.status().to_string().c_str());
    return 1;
  }
  const size_t post_format = rec.boundaries().size();

  crashsim::WorkloadSpec spec;
  spec.seed = cli.seed;
  spec.ops = cli.ops;
  auto issued = eng.run_task(crashsim::run_workload(**fs, spec));
  if (!issued.ok()) {
    std::fprintf(stderr, "workload failed (seed %llu): %s\n",
                 static_cast<unsigned long long>(cli.seed),
                 issued.status().to_string().c_str());
    return 1;
  }
  fs->reset();
  rec.record_teardown();

  std::printf("seed %llu: %u ops -> %zu journal mutations, %zu boundaries "
              "(%zu during format)\n",
              static_cast<unsigned long long>(cli.seed), *issued,
              rec.journal_size(), rec.boundaries().size(), post_format);
  if (rec.boundaries().size() < cli.min_boundaries) {
    std::fprintf(stderr,
                 "FAIL: only %zu boundaries, expected >= %zu (workload too "
                 "small to be meaningful)\n",
                 rec.boundaries().size(), cli.min_boundaries);
    return 1;
  }

  crashsim::ExploreOptions opts;
  opts.torn = cli.torn;
  opts.fs = fsopts;
  opts.require_recovery_from = post_format;
  opts.max_states = cli.max_states;
  const crashsim::ExploreResult res = crashsim::explore(rec, opts);

  std::printf("%s\n", res.summary().c_str());
  if (!res.ok()) {
    std::fprintf(stderr,
                 "reproduce with: crash_explore --seed %llu --ops %u "
                 "(first failure: boundary %zu, torn %llu)\n",
                 static_cast<unsigned long long>(cli.seed), cli.ops,
                 res.failures.front().boundary,
                 static_cast<unsigned long long>(
                     res.failures.front().torn_sectors));
    return 1;
  }
  return 0;
}
