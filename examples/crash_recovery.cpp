// Crash recovery walkthrough — what survives when an application dies
// mid-run and how the runtime reconstructs itself (§III-E "Metadata
// Provenance": state checkpoint + operation-log replay).
//
// The scenario: a rank writes three checkpoints; the background state
// checkpointer persists DRAM state once along the way; the process then
// "crashes" (no clean shutdown). A new runtime instance mounts the same
// partition, loads the newest internal state checkpoint, replays the
// log's tail, and the newest application checkpoint verifies intact.
//
// Run:  ./build/examples/crash_recovery
#include <cstdio>

#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

using namespace nvmecr;
using namespace nvmecr::literals;

namespace {

sim::Task<void> scenario(sim::Engine& eng, hw::RamDevice& dev) {
  microfs::Options options;
  options.log_slots = 64;  // small ring: forces a mid-run state checkpoint
  options.checkpoint_free_threshold = 0.5;
  options.coalesce_window = 0;  // every op takes a slot (visible mechanics)

  {
    auto fs = (co_await microfs::MicroFs::format(eng, dev, options)).value();
    for (int step = 0; step < 3; ++step) {
      char name[32];
      std::snprintf(name, sizeof(name), "/step%02d.ckpt", step);
      const int fd = (co_await fs->creat(name)).value();
      for (int i = 0; i < 12; ++i) {
        NVMECR_CHECK((co_await fs->write_tagged(fd, 1_MiB)).ok());
      }
      NVMECR_CHECK((co_await fs->close(fd)).ok());
      std::printf("step %d written: log %u/%u slots free, %llu state "
                  "checkpoint(s) so far\n",
                  step, fs->log_free_slots(), fs->log_capacity(),
                  static_cast<unsigned long long>(
                      fs->stats().state_checkpoints));
    }
    std::printf("\n*** simulated crash: instance destroyed without "
                "shutdown ***\n\n");
    // unique_ptr goes out of scope; nothing is flushed — by design
    // everything already on the device is durable (§III-D).
  }

  auto fs = (co_await microfs::MicroFs::recover(eng, dev, options)).value();
  std::printf("recovery: loaded state checkpoint + replayed %llu log "
              "records\n",
              static_cast<unsigned long long>(fs->stats().replayed_records));

  auto names = fs->readdir("/");
  std::printf("namespace after recovery:");
  for (const auto& n : *names) std::printf(" %s", n.c_str());
  std::printf("\n");

  for (const auto& n : *names) {
    Status s = co_await fs->verify_tagged("/" + n);
    std::printf("  /%s: %llu MiB, content %s\n", n.c_str(),
                static_cast<unsigned long long>(fs->stat("/" + n)->size >> 20),
                s.ok() ? "VERIFIED" : s.to_string().c_str());
    NVMECR_CHECK(s.ok());
  }

  // The device-resident directory file (§III-E: the root directory is a
  // file on the SSD partition) agrees with the recovered namespace.
  auto stream = co_await fs->read_dirfile("/");
  auto live = microfs::live_view(*stream);
  std::printf("device-resident root dirfile lists %zu live entries "
              "(matches namespace: %s)\n",
              live.size(), live.size() == names->size() ? "yes" : "NO");
  NVMECR_CHECK(live.size() == names->size());
}

}  // namespace

int main() {
  sim::Engine eng;
  hw::RamDevice dev(256_MiB, 4096);
  eng.run_task(scenario(eng, dev));
  std::printf("crash_recovery OK\n");
  return 0;
}
