// Cascading-failure walkthrough (§III-F "Handling Cascading Failures").
//
// The balancer already keeps a process and its checkpoint data in
// separate failure domains; this scenario is the rare double failure:
// the job AND the storage node holding its newest fast-tier checkpoint
// die together. Multi-level checkpointing saves the run — the periodic
// copy on the Lustre-like PFS is intact and restart falls back to it.
//
// Run:  ./build/examples/cascading_failure
#include <cstdio>

#include "baselines/models.h"
#include "nvmecr/multilevel.h"
#include "nvmecr/runtime.h"

using namespace nvmecr;
using namespace nvmecr::literals;

namespace {

sim::Task<void> scenario(nvmecr_rt::Cluster& cluster,
                         nvmecr_rt::NvmecrSystem& fast_system,
                         baselines::LustreModel& pfs) {
  auto fast = (co_await fast_system.connect(0)).value();
  auto slow = (co_await pfs.connect(0)).value();
  nvmecr_rt::MultiLevelRouter router(*fast, *slow,
                                     nvmecr_rt::MultiLevelPolicy(2));

  // Checkpoints 0..3: policy (interval 2) puts 0 and 2 on the PFS.
  for (uint32_t step = 0; step < 4; ++step) {
    baselines::StorageClient& tier = router.level_for(step);
    const std::string path = "/step" + std::to_string(step) + ".ckpt";
    auto fd = (co_await tier.create(path)).value();
    for (int i = 0; i < 8; ++i) {
      NVMECR_CHECK((co_await tier.write(fd, 1_MiB)).ok());
    }
    NVMECR_CHECK((co_await tier.fsync(fd)).ok());
    NVMECR_CHECK((co_await tier.close(fd)).ok());
    std::printf("checkpoint %u -> %s tier\n", step,
                router.policy().is_pfs_checkpoint(step) ? "PFS " : "fast");
  }

  // *** cascading failure: the storage node with the fast tier dies ***
  const fabric::NodeId lost =
      fast_system.job().assignment.ssd_nodes[0];
  cluster.storage_ssd(cluster.storage_ssd_index(lost)).fail_device();
  std::printf("\n*** storage node %s failed (fast tier lost) ***\n\n",
              cluster.topology().node(lost).name.c_str());

  // Restart: the newest checkpoint (step 3) lived on the fast tier and
  // is gone; its read fails...
  {
    baselines::StorageClient& tier = router.recovery_level(false);
    auto fd = co_await tier.open_read("/step3.ckpt");
    Status s = fd.status();
    if (fd.ok()) {
      s = co_await tier.read(*fd, 1_MiB);
    }
    std::printf("restart from fast tier: %s\n", s.to_string().c_str());
    NVMECR_CHECK(!s.ok());
  }
  // ...so recovery falls back to the newest PFS checkpoint (step 2).
  {
    baselines::StorageClient& tier = router.recovery_level(true);
    auto fd = (co_await tier.open_read("/step2.ckpt")).value();
    for (int i = 0; i < 8; ++i) {
      NVMECR_CHECK((co_await tier.read(fd, 1_MiB)).ok());
    }
    NVMECR_CHECK((co_await tier.close(fd)).ok());
    std::printf("restart from PFS checkpoint step2: OK (8 MiB read back)\n");
  }
  std::printf(
      "\nThe job lost one checkpoint period of progress, not the run — "
      "the §III-F trade: most checkpoints at NVMe speed, durability "
      "against cascading failures from the PFS copies.\n");
}

}  // namespace

int main() {
  nvmecr_rt::Cluster cluster;
  nvmecr_rt::Scheduler scheduler(cluster);
  auto job = scheduler.allocate(1, 28, 256_MiB, 1);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem fast(cluster, *job, nvmecr_rt::RuntimeConfig{});
  baselines::LustreModel pfs(cluster);
  cluster.engine().run_task(scenario(cluster, fast, pfs));
  std::printf("cascading_failure OK\n");
  return 0;
}
