// Quickstart — the microfs public API in five minutes.
//
// Formats a MicroFs instance over an in-memory device, exercises the
// POSIX-style surface (mkdir/creat/write/read/stat/readdir/unlink),
// shows the metadata-provenance machinery at work (operation log,
// coalescing, state checkpoints), then remounts with recover() and
// proves the data survived.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

using namespace nvmecr;
using namespace nvmecr::literals;

namespace {

sim::Task<void> demo(sim::Engine& eng, hw::RamDevice& dev) {
  // --- format a fresh private-namespace filesystem --------------------
  microfs::Options options;
  options.hugeblock_size = 32_KiB;  // the paper's sweet spot (§IV-B)
  auto fs = (co_await microfs::MicroFs::format(eng, dev, options)).value();
  std::printf("formatted: %llu hugeblocks of %llu KiB, %u log slots\n",
              static_cast<unsigned long long>(fs->data_region_blocks()),
              static_cast<unsigned long long>(options.hugeblock_size >> 10),
              fs->log_capacity());

  // --- namespace + byte IO --------------------------------------------
  NVMECR_CHECK((co_await fs->mkdir("/results")).ok());
  const int fd = (co_await fs->creat("/results/summary.txt")).value();
  const char message[] = "NVMe-CR quickstart: hello, ephemeral storage!";
  std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(message), sizeof(message));
  NVMECR_CHECK((co_await fs->write(fd, bytes)).ok());
  NVMECR_CHECK((co_await fs->close(fd)).ok());

  // --- bulk checkpoint payload (tagged IO) -----------------------------
  const int ckpt = (co_await fs->creat("/results/rank0.ckpt")).value();
  for (int i = 0; i < 8; ++i) {
    NVMECR_CHECK((co_await fs->write_tagged(ckpt, 1_MiB)).ok());
  }
  NVMECR_CHECK((co_await fs->fsync(ckpt)).ok());
  NVMECR_CHECK((co_await fs->close(ckpt)).ok());

  auto names = fs->readdir("/results");
  std::printf("readdir /results:");
  for (const auto& n : *names) std::printf(" %s", n.c_str());
  std::printf("\n");
  std::printf("rank0.ckpt size: %llu MiB (stat)\n",
              static_cast<unsigned long long>(
                  fs->stat("/results/rank0.ckpt")->size >> 20));
  std::printf("operation log: %llu records appended, %llu coalesced "
              "in place (Figure 5)\n",
              static_cast<unsigned long long>(fs->log_counters().appended),
              static_cast<unsigned long long>(fs->log_counters().coalesced));

  // --- crash + recovery -------------------------------------------------
  // Drop the instance WITHOUT a clean shutdown; all that survives is the
  // device: superblock, operation log, dirfiles, data blocks.
  fs.reset();
  auto recovered = (co_await microfs::MicroFs::recover(eng, dev, options))
                       .value();
  std::printf("recovered: replayed %llu log records\n",
              static_cast<unsigned long long>(
                  recovered->stats().replayed_records));

  // Byte content survives byte-exact...
  const int rfd =
      (co_await recovered->open("/results/summary.txt",
                                microfs::OpenFlags::ReadOnly()))
          .value();
  std::vector<std::byte> out(sizeof(message));
  NVMECR_CHECK((co_await recovered->read(rfd, out)).ok());
  NVMECR_CHECK((co_await recovered->close(rfd)).ok());
  std::printf("summary.txt after recovery: \"%s\"\n",
              reinterpret_cast<const char*>(out.data()));
  // ...and the checkpoint verifies block-for-block against its pattern.
  NVMECR_CHECK((co_await recovered->verify_tagged("/results/rank0.ckpt")).ok());
  std::printf("rank0.ckpt content verified after recovery\n");
}

}  // namespace

int main() {
  sim::Engine eng;
  hw::RamDevice dev(256_MiB, 4096);
  eng.run_task(demo(eng, dev));
  std::printf("quickstart OK\n");
  return 0;
}
