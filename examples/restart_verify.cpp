// Restart verification harness (DESIGN.md §16): run an app-workload
// model to completion (golden), run it again with a kill at a chosen
// epoch — before, in the middle of, or after its checkpoint — restore
// from the requested recovery path, resume, and assert that every
// post-restore residual and every final rank digest is bit-identical
// to the golden run.
//
// Run:  ./build/examples/restart_verify
//       ./build/examples/restart_verify --app miniFE-CG --kill-point mid
//       ./build/examples/restart_verify --app all --kill-point all --path pfs
//
// --app all runs the three modeled shapes (CoMD, miniFE-CG, NPB-SP);
// --kill-point all runs the whole kill-point matrix. A golden-vs-
// restored residual table is written to --csv (CI uploads it as an
// artifact). Exits with the unified chaos codes (chaos/campaign.h):
// 0 all scenarios verified, 1 infra, 2 usage, 3 a run failed with a
// typed error, 5 restored digests/residuals diverged from golden; the
// matrix keeps going and reports the worst code seen.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baselines/models.h"
#include "chaos/campaign.h"
#include "nvmecr/runtime.h"
#include "workloads/app_driver.h"
#include "workloads/apps.h"

using namespace nvmecr;
using namespace nvmecr::literals;
using workloads::AppDriver;
using workloads::AppRunParams;
using workloads::AppRunResult;
using workloads::AppSpec;
using workloads::KillPoint;
using workloads::KillSpec;
using workloads::RestorePlan;

namespace {

struct Cli {
  std::string app = "all";
  std::string kill_point = "mid";
  std::string path = "fast";  // fast | pfs
  uint32_t ranks = 8;
  uint32_t epochs = 6;
  uint32_t kill_epoch = 3;
  uint64_t seed = 0x5EED;
  std::string csv = std::string(NVMECR_OUTPUT_DIR) + "/restart_verify.csv";
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app NAME|all] [--ranks N] [--epochs N]\n"
               "          [--kill-epoch K] [--kill-point before|mid|after|all]\n"
               "          [--path fast|pfs] [--seed N] [--csv FILE]\n",
               argv0);
  return chaos::kExitUsage;
}

/// One self-contained simulation stack. Golden and killed runs each get
/// their own: the model state evolution is sim-time-independent, so
/// results compare bit-for-bit across stacks, and separate stacks keep
/// the killed run's checkpoint files from colliding with the golden's.
struct Stack {
  nvmecr_rt::Cluster cluster;
  nvmecr_rt::Scheduler sched;
  std::optional<nvmecr_rt::JobAllocation> job;
  std::optional<nvmecr_rt::NvmecrSystem> fast;
  std::optional<baselines::LustreModel> pfs;

  static nvmecr_rt::ClusterSpec make_spec() {
    nvmecr_rt::ClusterSpec s;
    s.compute_nodes = 4;
    s.storage_nodes = 4;
    s.storage_racks = 2;
    return s;
  }

  Stack(uint32_t ranks, bool with_pfs)
      : cluster(make_spec()), sched(cluster) {
    auto j = sched.allocate(ranks, /*procs_per_node=*/ranks, 64_MiB,
                            cluster.spec().storage_nodes);
    if (!j.ok()) {
      std::fprintf(stderr, "allocate failed: %s\n",
                   j.status().to_string().c_str());
      std::exit(chaos::kExitInfra);
    }
    job = *j;
    fast.emplace(cluster, *job, nvmecr_rt::RuntimeConfig{});
    if (with_pfs) pfs.emplace(cluster, ranks);
  }
};

AppRunParams scenario_params(const AppSpec& spec, const Cli& cli,
                             bool with_pfs) {
  AppRunParams p;
  p.io = workloads::io_params_for(spec, cli.ranks);
  // Shrink the simulated streams so the matrix runs in seconds; the
  // verified solver state (p.elems doubles/rank) is independent of them.
  p.io.procs_per_node = cli.ranks;
  p.io.atoms_per_rank = 4096;
  p.io.bytes_per_atom = 512;  // 2 MiB per rank per checkpoint
  p.io.io_chunk = 1_MiB;
  p.io.checkpoints = cli.epochs;
  p.io.compute_per_period = 2 * kMillisecond;
  p.io.keep_last = cli.epochs + 1;  // keep everything: probe freely
  p.seed = cli.seed;
  p.pfs_interval = with_pfs ? 2 : 0;
  return p;
}

/// Maps a failed run's Status to the unified exit-code class.
int failure_code(const Status& st) {
  return st.code() == ErrorCode::kDeadlineExceeded ? chaos::kExitHang
                                                   : chaos::kExitTypedFailure;
}

/// Golden run, killed run, restore through the chosen path, verify.
/// Returns kExitOk on bit-identical digests + residuals.
int run_scenario(const AppSpec& spec, KillPoint point, const Cli& cli,
                 std::FILE* csv) {
  const bool with_pfs = cli.path == "pfs";
  const uint32_t kill_epoch =
      cli.kill_epoch < cli.epochs ? cli.kill_epoch : cli.epochs - 1;
  std::printf("--- %s: kill %s at epoch %u, restore via %s ---\n", spec.name,
              workloads::kill_point_name(point), kill_epoch,
              cli.path.c_str());

  Stack golden_stack(cli.ranks, with_pfs);
  AppDriver golden_driver(golden_stack.cluster, *golden_stack.fast, spec,
                          scenario_params(spec, cli, with_pfs),
                          with_pfs ? &*golden_stack.pfs : nullptr);
  auto golden = golden_driver.run();
  if (!golden.ok()) {
    std::fprintf(stderr, "FAIL: golden run: %s\n",
                 golden.status().to_string().c_str());
    return failure_code(golden.status());
  }

  Stack stack(cli.ranks, with_pfs);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   scenario_params(spec, cli, with_pfs),
                   with_pfs ? &*stack.pfs : nullptr);
  KillSpec kill;
  kill.epoch = kill_epoch;
  kill.point = point;
  auto killed = driver.run(kill);
  if (!killed.ok()) {
    std::fprintf(stderr, "FAIL: killed run: %s\n",
                 killed.status().to_string().c_str());
    return failure_code(killed.status());
  }

  RestorePlan plan;
  if (with_pfs) {
    // PFS-only chain: tier tags confine the probe to PFS-routed epochs,
    // exactly what survives when the whole fast tier is gone.
    plan.chain = [&driver](uint32_t rank) {
      return std::vector<nvmecr_rt::RestoreSource>{
          {driver.pfs_session(rank), true, "pfs"}};
    };
    plan.resume_checkpoints = false;
  }
  auto restored = driver.restart(plan);
  if (!restored.ok()) {
    std::fprintf(stderr, "FAIL: restart: %s\n",
                 restored.status().to_string().c_str());
    return failure_code(restored.status());
  }
  if (restored->from_initial) {
    std::printf("no committed checkpoint: restarted from initial state\n");
  } else {
    std::printf("restored epoch %u from %s, resumed %zu epochs\n",
                restored->restored_epoch, cli.path.c_str(),
                restored->residuals.size());
  }

  std::printf("%-6s  %-24s  %-24s\n", "epoch", "golden residual",
              "restored residual");
  for (uint32_t e = 0; e < golden->residuals.size(); ++e) {
    const double g = golden->residuals[e];
    const bool have = e >= restored->first_epoch &&
                      e - restored->first_epoch < restored->residuals.size();
    const double r = have ? restored->residuals[e - restored->first_epoch] : 0;
    std::printf("%-6u  %-24.17g  ", e, g);
    if (have) {
      std::printf("%-24.17g%s\n", r, r == g ? "" : "  <-- DIVERGED");
    } else {
      std::printf("%-24s\n", "(before restore)");
    }
    if (csv != nullptr) {
      std::fprintf(csv, "%s,%s,%s,%u,%.17g,", spec.name,
                   workloads::kill_point_name(point), cli.path.c_str(), e, g);
      if (have) std::fprintf(csv, "%.17g", r);
      std::fprintf(csv, "\n");
    }
  }

  const Status st = workloads::verify_restart(*golden, *restored);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.to_string().c_str());
    return chaos::kExitDivergence;
  }
  std::printf("OK: job digest %016llx matches golden (%u ranks)\n\n",
              static_cast<unsigned long long>(restored->job_digest),
              cli.ranks);
  return chaos::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--app") == 0 && (v = next())) {
      cli.app = v;
    } else if (std::strcmp(argv[i], "--kill-point") == 0 && (v = next())) {
      cli.kill_point = v;
    } else if (std::strcmp(argv[i], "--path") == 0 && (v = next())) {
      cli.path = v;
    } else if (std::strcmp(argv[i], "--ranks") == 0 && (v = next())) {
      cli.ranks = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--epochs") == 0 && (v = next())) {
      cli.epochs = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--kill-epoch") == 0 && (v = next())) {
      cli.kill_epoch = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--seed") == 0 && (v = next())) {
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--csv") == 0 && (v = next())) {
      cli.csv = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.ranks == 0 || cli.epochs == 0 ||
      (cli.path != "fast" && cli.path != "pfs")) {
    return usage(argv[0]);
  }

  std::vector<const AppSpec*> apps;
  if (cli.app == "all") {
    for (const char* name : {"CoMD", "miniFE-CG", "NPB-SP"}) {
      apps.push_back(workloads::find_app(name));
    }
  } else {
    const AppSpec* spec = workloads::find_app(cli.app);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown app '%s'; registered:", cli.app.c_str());
      for (const auto& s : workloads::app_registry()) {
        std::fprintf(stderr, " %s", s.name);
      }
      std::fprintf(stderr, "\n");
      return chaos::kExitUsage;
    }
    apps.push_back(spec);
  }

  std::vector<KillPoint> points;
  if (cli.kill_point == "all") {
    points = {KillPoint::kBeforeCheckpoint, KillPoint::kMidCheckpoint,
              KillPoint::kAfterCheckpoint};
  } else if (cli.kill_point == "before") {
    points = {KillPoint::kBeforeCheckpoint};
  } else if (cli.kill_point == "mid") {
    points = {KillPoint::kMidCheckpoint};
  } else if (cli.kill_point == "after") {
    points = {KillPoint::kAfterCheckpoint};
  } else {
    return usage(argv[0]);
  }

  std::FILE* csv = std::fopen(cli.csv.c_str(), "w");
  if (csv != nullptr) {
    std::fprintf(csv,
                 "app,kill_point,path,epoch,golden_residual,"
                 "restored_residual\n");
  }

  int rc = chaos::kExitOk;
  int scenarios = 0;
  for (const AppSpec* spec : apps) {
    for (KillPoint point : points) {
      // Keep the worst outcome class: divergence dominates typed failure.
      rc = std::max(rc, run_scenario(*spec, point, cli, csv));
      ++scenarios;
    }
  }
  if (csv != nullptr) {
    std::fclose(csv);
    std::printf("residual table: %s\n", cli.csv.c_str());
  }
  std::printf(rc == chaos::kExitOk
                  ? "restart verification: %d/%d scenarios OK\n"
                      : "restart verification: FAILURES in %d scenarios\n",
              scenarios, scenarios);
  return rc;
}
