// Chaos campaign driver (DESIGN.md §17): generate N seeded failure
// schedules, run each against the app-workload kill-and-restart harness
// on the full resilient stack, and enforce the survival trichotomy —
// every run completes digest-identical after restart OR fails with a
// typed error; hangs, fsck corruption, and digest divergence are
// violations. On the first violation the campaign ddmin-shrinks the
// schedule and prints a minimal {seed, event-subset} reproducer
// (crash_explore parity), plus dumps the schedule for
// `fault_storm --schedule` replay.
//
// Run:  ./build/examples/chaos_campaign --schedules 200
//       ./build/examples/chaos_campaign --quick           (50 schedules)
//       ./build/examples/chaos_campaign --replay-seed 17 --events 0,3,5
//       ./build/examples/chaos_campaign --replay storm.schedule
//       ./build/examples/chaos_campaign --dump 3 --dump-to s.schedule
//
// Exit codes (shared with fault_storm / restart_verify, chaos/campaign.h):
//   0 ok, 1 infra, 2 usage, 3 typed failure (replay only), 4 hang,
//   5 divergence, 6 corruption.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/daly.h"

using namespace nvmecr;
using namespace nvmecr::chaos;

namespace {

struct Cli {
  uint32_t schedules = 200;
  uint64_t seed = 1;
  std::string app = "CoMD";
  uint32_t ranks = 4;
  uint32_t epochs = 5;
  bool quick = false;
  bool verbose = false;
  bool no_shrink = false;
  std::string csv = std::string(NVMECR_OUTPUT_DIR) + "/chaos_campaign.csv";
  std::string dump_to =
      std::string(NVMECR_OUTPUT_DIR) + "/chaos_violation.schedule";
  // Replay / dump modes.
  long long replay_seed = -1;
  std::string events;       // comma-separated event ids, with --replay-seed
  std::string replay_file;  // serialized schedule
  long long dump_index = -1;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--seed S] [--quick] [--verbose]\n"
               "          [--app NAME] [--ranks N] [--epochs N] [--csv FILE]\n"
               "          [--no-shrink] [--dump-to FILE]\n"
               "          [--replay-seed S [--events i,j,...]]\n"
               "          [--replay FILE] [--dump INDEX]\n",
               argv0);
  return kExitUsage;
}

std::vector<uint32_t> parse_ids(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) {
      out.push_back(static_cast<uint32_t>(std::strtoul(tok.c_str(), nullptr, 0)));
    }
  }
  return out;
}

void print_schedule(const FailureSchedule& sched) {
  std::printf("schedule seed 0x%llx: %zu events over %lld ns\n",
              static_cast<unsigned long long>(sched.params.seed),
              sched.events.size(),
              static_cast<long long>(sched.params.horizon));
  for (const FailureEvent& e : sched.events) {
    std::printf("  [%2u] %-12s victim %2u at %9lld until %9lld%s%s\n", e.id,
                fault_kind_name(e.kind), e.victim,
                static_cast<long long>(e.at),
                static_cast<long long>(e.until),
                e.kind == FaultKind::kStraggler ? " slow" : "",
                e.kind == FaultKind::kJobKill
                    ? workloads::kill_point_name(e.kill_point)
                    : "");
  }
}

/// Replay one schedule (optionally an event subset) and report.
int replay(CampaignRunner& runner, const FailureSchedule& sched,
           const std::vector<uint32_t>* subset) {
  print_schedule(sched);
  RunOutcome out = runner.run_schedule(sched, subset);
  std::printf("verdict: %s%s%s (faults applied: %u, sim time %lld ns)\n",
              verdict_name(out.verdict), out.status.ok() ? "" : " — ",
              out.status.ok() ? "" : out.status.to_string().c_str(),
              out.faults.applied, static_cast<long long>(out.run_time));
  return verdict_exit_code(out.verdict);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--schedules") == 0 && (v = next())) {
      cli.schedules = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--seed") == 0 && (v = next())) {
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--app") == 0 && (v = next())) {
      cli.app = v;
    } else if (std::strcmp(argv[i], "--ranks") == 0 && (v = next())) {
      cli.ranks = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--epochs") == 0 && (v = next())) {
      cli.epochs = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--csv") == 0 && (v = next())) {
      cli.csv = v;
    } else if (std::strcmp(argv[i], "--dump-to") == 0 && (v = next())) {
      cli.dump_to = v;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cli.quick = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      cli.verbose = true;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      cli.no_shrink = true;
    } else if (std::strcmp(argv[i], "--replay-seed") == 0 && (v = next())) {
      cli.replay_seed = std::strtoll(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--events") == 0 && (v = next())) {
      cli.events = v;
    } else if (std::strcmp(argv[i], "--replay") == 0 && (v = next())) {
      cli.replay_file = v;
    } else if (std::strcmp(argv[i], "--dump") == 0 && (v = next())) {
      cli.dump_index = std::strtoll(v, nullptr, 0);
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.ranks == 0 || cli.epochs == 0 || cli.schedules == 0) {
    return usage(argv[0]);
  }
  if (cli.quick) cli.schedules = 50;

  CampaignConfig cfg;
  cfg.app = cli.app;
  cfg.ranks = cli.ranks;
  cfg.epochs = cli.epochs;
  cfg.base.seed = cli.seed;
  CampaignRunner runner(cfg);

  // --dump INDEX: print + serialize schedule INDEX, no run.
  if (cli.dump_index >= 0) {
    FailureSchedule sched = generate_schedule(
        runner.schedule_params(static_cast<uint32_t>(cli.dump_index)));
    print_schedule(sched);
    std::ofstream out(cli.dump_to);
    out << serialize_schedule(sched);
    std::printf("schedule written to %s\n", cli.dump_to.c_str());
    return kExitOk;
  }

  // --replay FILE: parse a serialized schedule and run it once.
  if (!cli.replay_file.empty()) {
    std::ifstream in(cli.replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.replay_file.c_str());
      return kExitInfra;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto sched = parse_schedule(buf.str());
    if (!sched.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   sched.status().to_string().c_str());
      return kExitUsage;
    }
    return replay(runner, *sched, nullptr);
  }

  // --replay-seed S [--events ...]: regenerate schedule with seed S.
  if (cli.replay_seed >= 0) {
    ScheduleParams sp = cfg.base;
    sp.seed = static_cast<uint64_t>(cli.replay_seed);
    sp.epochs = cfg.epochs;
    FailureSchedule sched = generate_schedule(sp);
    std::vector<uint32_t> subset = parse_ids(cli.events);
    return replay(runner, sched, cli.events.empty() ? nullptr : &subset);
  }

  // Campaign mode.
  std::FILE* csv = std::fopen(cli.csv.c_str(), "w");
  std::printf("chaos campaign: %u schedules, base seed 0x%llx, app %s, "
              "%u ranks x %u epochs\n",
              cli.schedules, static_cast<unsigned long long>(cli.seed),
              cli.app.c_str(), cli.ranks, cli.epochs);
  std::printf("schedule MTBF (crash classes): %.2f ms; survival deadline "
              "%lld ms/phase\n",
              schedule_mtbf(cfg.base) / kMillisecond,
              static_cast<long long>(cfg.deadline / kMillisecond));
  CampaignResult res =
      runner.run_campaign(cli.schedules, !cli.no_shrink, csv, cli.verbose);
  if (csv != nullptr) {
    std::fclose(csv);
    std::printf("per-run table: %s\n", cli.csv.c_str());
  }

  std::printf("\ncampaign: %u runs — %u completed digest-identical, "
              "%u typed failures, %u hangs, %u corruptions, "
              "%u divergences, %u infra\n",
              res.runs, res.completed, res.typed_failures, res.hangs,
              res.corruptions, res.divergences, res.infra);
  if (res.clean()) {
    std::printf("survival trichotomy: OK (no hangs, no corruption, "
                "no divergence in %u schedules)\n",
                res.runs);
    return kExitOk;
  }

  const RunOutcome& bad = *res.first_violation;
  std::fprintf(stderr, "VIOLATION: %s on schedule seed 0x%llx: %s\n",
               verdict_name(bad.verdict),
               static_cast<unsigned long long>(bad.schedule_seed),
               bad.status.to_string().c_str());
  std::vector<uint32_t> subset = res.minimal_subset;
  if (subset.empty() && !res.violating_schedule.events.empty()) {
    for (const FailureEvent& e : res.violating_schedule.events) {
      subset.push_back(e.id);
    }
  }
  std::fprintf(stderr, "minimal reproducer (%zu of %zu events):\n",
               subset.size(), res.violating_schedule.events.size());
  std::fprintf(stderr, "reproduce with: %s\n",
               reproducer_line(res.violating_schedule, subset).c_str());
  std::ofstream dump(cli.dump_to);
  dump << serialize_schedule(res.violating_schedule);
  std::fprintf(stderr, "schedule dumped to %s (replayable via "
               "chaos_campaign --replay or fault_storm --schedule)\n",
               cli.dump_to.c_str());
  return res.exit_code();
}
