// Fault-storm demo: kill K of the job's primary NVMe-oF targets in the
// middle of a CoMD-style checkpoint run and watch the resilience layer
// (DESIGN.md §13) absorb it — detection, retry, mid-checkpoint failover
// to a partner-domain spare, degraded completion, background healing
// once the targets come back, restart from the fast tier with no PFS
// deployed at all.
//
// Run:  ./build/examples/fault_storm --kill 2 --at mid-checkpoint
//       ./build/examples/fault_storm --kill 1 --at 5000000 --recover-at 0
//       ./build/examples/fault_storm --kill 2 --offload
//       ./build/examples/fault_storm --schedule storm.schedule
//
// --offload layers the target-side offload pipeline (digest stage) on
// top of the resilient system: the storm then also revokes the victims'
// offload grants, and the demo verifies the stages fell back to host
// compute while the checkpoint stream kept flowing.
//
// --schedule replays a chaos schedule file (the format chaos_campaign
// dumps on a violation, DESIGN.md §17) instead of the hand-armed storm:
// every target/SSD crash, link flap, straggler window and partition in
// the file is injected (job-kill events are skipped — this demo's
// workload has no kill-and-restart path; use chaos_campaign for those).
//
// Exits with the unified chaos codes (chaos/campaign.h): 0 absorbed,
// 1 infra or an absorb invariant failed, 2 usage, 3 the run failed with
// a typed error — and on any failure prints a single reproducing
// command line.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "nvmecr/runtime.h"
#include "obs/metrics.h"
#include "offload/pipeline.h"
#include "obs/observer.h"
#include "redundancy/engine.h"
#include "simcore/trace.h"
#include "resilience/failover.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "workloads/comd.h"

using namespace nvmecr;
using namespace nvmecr::literals;

namespace {

struct Cli {
  uint32_t kill = 2;
  uint32_t ranks = 8;
  /// Kill time; 0 = "mid-checkpoint" (just after the first compute
  /// phase, while checkpoint IO is in flight).
  SimTime at = 0;
  /// Recovery time; 0 = kill + 57 ms. Pass a negative value to keep the
  /// targets dead forever (degraded completion only, no healing).
  SimTime recover_at = 0;
  uint64_t seed = 42;
  /// Wrap the resilient system in the offload pipeline (digest stage).
  bool offload = false;
  /// Chaos schedule file to replay instead of the hand-armed storm.
  std::string schedule;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kill K] [--ranks N] [--at mid-checkpoint|NS]\n"
               "          [--recover-at NS|-1] [--seed N] [--offload]\n"
               "          [--schedule FILE]\n",
               argv0);
  return chaos::kExitUsage;
}

/// The one command line that reproduces this exact storm.
std::string reproducer(const Cli& cli) {
  if (!cli.schedule.empty()) {
    return "fault_storm --schedule " + cli.schedule;
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "fault_storm --kill %u --ranks %u --at %lld "
                "--recover-at %lld --seed %llu%s",
                cli.kill, cli.ranks, static_cast<long long>(cli.at),
                static_cast<long long>(cli.recover_at),
                static_cast<unsigned long long>(cli.seed),
                cli.offload ? " --offload" : "");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--kill") == 0 && (v = next())) {
      cli.kill = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--ranks") == 0 && (v = next())) {
      cli.ranks = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--at") == 0 && (v = next())) {
      cli.at = std::strcmp(v, "mid-checkpoint") == 0
                   ? 0
                   : static_cast<SimTime>(std::strtoll(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--recover-at") == 0 && (v = next())) {
      cli.recover_at = static_cast<SimTime>(std::strtoll(v, nullptr, 0));
    } else if (std::strcmp(argv[i], "--seed") == 0 && (v = next())) {
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(argv[i], "--offload") == 0) {
      cli.offload = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0 && (v = next())) {
      cli.schedule = v;
    } else {
      return usage(argv[0]);
    }
  }

  // Replay mode: load the schedule up front — it sizes the storage side.
  std::optional<chaos::FailureSchedule> replay;
  if (!cli.schedule.empty()) {
    std::ifstream in(cli.schedule);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.schedule.c_str());
      return chaos::kExitInfra;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto sched = chaos::parse_schedule(buf.str());
    if (!sched.ok()) {
      std::fprintf(stderr, "bad schedule %s: %s\n", cli.schedule.c_str(),
                   sched.status().to_string().c_str());
      return chaos::kExitUsage;
    }
    replay = *std::move(sched);
  }

  nvmecr_rt::ClusterSpec spec;
  spec.compute_nodes = 8;
  spec.storage_nodes = replay ? replay->params.storage_nodes : 8;
  spec.storage_racks = replay ? replay->params.racks : 4;
  nvmecr_rt::Cluster cluster(spec);
  obs::MetricsRegistry metrics;
  // Flight recorder: keep only the most recent trace events. The
  // resilience layer dumps this tail to stderr at each failover pivot,
  // and the engine dumps it if the run ever deadlocks.
  sim::TraceCollector flight;
  flight.set_ring_capacity(256);
  obs::Observer o;
  o.trace = &flight;
  o.metrics = &metrics;
  cluster.install_observer(o);
  nvmecr_rt::Scheduler sched(cluster);

  workloads::ComdParams params;
  params.nranks = cli.ranks;
  params.procs_per_node = 1;
  params.atoms_per_rank = 8192;
  params.bytes_per_atom = 512;  // 4 MiB per rank per checkpoint
  params.io_chunk = 1_MiB;
  params.checkpoints = 3;
  params.compute_per_period = 2 * kMillisecond;
  params.keep_last = 3;

  auto job = sched.allocate(params.nranks, params.procs_per_node, 64_MiB,
                            spec.storage_nodes);
  if (!job.ok()) {
    std::fprintf(stderr, "allocate failed: %s\n",
                 job.status().to_string().c_str());
    return chaos::kExitInfra;
  }
  if (!replay && cli.kill > job->assignment.ssd_nodes.size()) {
    std::fprintf(stderr, "--kill %u > %zu allocated targets\n", cli.kill,
                 job->assignment.ssd_nodes.size());
    return chaos::kExitUsage;
  }

  resilience::HealthMonitor monitor(cluster.engine(), cluster.topology());
  monitor.set_observer(cluster.observer());
  nvmecr_rt::RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, resilience::RetryPolicy{}, cli.seed,
      cluster.observer());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);

  redundancy::RedundancyOptions ropts;
  ropts.scheme = redundancy::Scheme::kPartner;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           ropts, config);
  if (!dep.ok()) {
    std::fprintf(stderr, "deploy_redundancy failed: %s\n",
                 dep.status().to_string().c_str());
    return chaos::kExitInfra;
  }

  resilience::ResilientSystem sys(cluster, sched, *dep->system, monitor,
                                  *job, config);
  sys.set_observer(cluster.observer());

  // Optional offload pipeline on top: the targets digest each landed
  // extent until the storm kills them, then the stage falls back to
  // host-side CRC and the session is recorded in the degraded manifest.
  std::optional<offload::OffloadSystem> off;
  if (cli.offload) {
    offload::OffloadOptions oopts;
    oopts.stages = nvmf::kOffloadDigest;
    off.emplace(cluster, sys, *job, oopts);
  }
  baselines::StorageSystem& run_sys =
      off ? static_cast<baselines::StorageSystem&>(*off)
          : static_cast<baselines::StorageSystem&>(sys);

  const SimTime kill_at = cli.at > 0 ? cli.at : 3 * kMillisecond;
  const SimTime recover_at =
      cli.recover_at < 0
          ? fabric::Network::kForever
          : (cli.recover_at > 0 ? cli.recover_at : kill_at + 57 * kMillisecond);
  const bool recovers = recover_at != fabric::Network::kForever;

  std::vector<fabric::NodeId> victims;
  if (replay) {
    const chaos::InjectionStats faults =
        chaos::apply_schedule(cluster, *replay);
    std::printf("replay: %s — %u of %zu events armed (%u target, %u ssd, "
                "%u link, %u straggler, %u partition%s)\n",
                cli.schedule.c_str(), faults.applied, replay->events.size(),
                faults.target_crashes, faults.ssd_crashes, faults.link_downs,
                faults.stragglers, faults.partitions,
                faults.kill ? "; job-kill skipped" : "");
    // Report per-victim health for the crashed targets below.
    for (const chaos::FailureEvent& e : replay->events) {
      if (e.kind != chaos::FaultKind::kTargetCrash) continue;
      const fabric::NodeId n = cluster.storage_nodes()
          [e.victim % cluster.storage_nodes().size()];
      bool seen = false;
      for (fabric::NodeId have : victims) seen = seen || have == n;
      if (!seen) victims.push_back(n);
    }
  } else {
    for (uint32_t i = 0; i < cli.kill; ++i) {
      const fabric::NodeId n = job->assignment.ssd_nodes[i];
      victims.push_back(n);
      cluster.storage_ssd(cluster.storage_ssd_index(n))
          .schedule_crash(kill_at, recovers ? recover_at : 0);
      cluster.target(cluster.storage_ssd_index(n))
          .schedule_crash(kill_at, recovers ? recover_at : 0);
      std::printf("storm: target node %u dies at %lld ns%s\n", n,
                  static_cast<long long>(kill_at),
                  recovers ? "" : " (forever)");
    }
    if (recovers) {
      std::printf("storm: victims recover at %lld ns\n",
                  static_cast<long long>(recover_at));
    }
  }

  const SimTime horizon =
      replay ? replay->params.horizon + 100 * kMillisecond
             : (recovers ? recover_at : kill_at) + 100 * kMillisecond;
  cluster.engine().spawn(monitor.heartbeat(
      [&cluster](fabric::NodeId n, SimTime t) {
        const uint32_t idx = cluster.storage_ssd_index(n);
        return cluster.target(idx).alive(t) &&
               !cluster.storage_ssd(idx).crashed_at(t);
      },
      horizon));
  cluster.engine().spawn(sys.healer(horizon));

  auto r = workloads::ComdDriver::run(cluster, run_sys, params);
  if (!r.ok()) {
    std::fprintf(stderr, "FAIL: run did not survive the storm: %s\n",
                 r.status().to_string().c_str());
    std::fprintf(stderr, "reproduce with: %s\n", reproducer(cli).c_str());
    return chaos::kExitTypedFailure;
  }

  auto counter = [&metrics](const char* name) -> uint64_t {
    const obs::Counter* c = metrics.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  std::printf("run completed: %u ranks, %u checkpoints + restart, "
              "%lld ns total (fast-tier restart, no PFS deployed)\n",
              params.nranks, params.checkpoints,
              static_cast<long long>(r->total_time));
  for (fabric::NodeId n : victims) {
    std::printf("victim node %u: declared dead at %lld ns, final state %s\n",
                n, static_cast<long long>(monitor.dead_since(n)),
                resilience::target_state_name(monitor.state(n)));
  }
  std::printf("resilience: failovers=%llu retries=%llu deaths=%llu "
              "degraded_ckpts=%llu heal_bytes=%llu transitions=%llu\n",
              static_cast<unsigned long long>(sys.failovers()),
              static_cast<unsigned long long>(counter("resilience.retries")),
              static_cast<unsigned long long>(counter("resilience.deaths")),
              static_cast<unsigned long long>(
                  counter("resilience.degraded_ckpts")),
              static_cast<unsigned long long>(sys.healed_bytes()),
              static_cast<unsigned long long>(monitor.transitions()));

  if (off) {
    std::printf("offload: host_compute=%llu ns, fallbacks=%llu\n",
                static_cast<unsigned long long>(off->host_compute_ns()),
                static_cast<unsigned long long>(off->fallbacks()));
    for (const std::string& line : off->fallback_log()) {
      std::printf("offload degraded manifest: %s\n", line.c_str());
    }
  }

  int rc = chaos::kExitOk;
  if (!replay && cli.kill > 0 && sys.failovers() == 0) {
    std::fprintf(stderr, "FAIL: storm killed %u targets but no failover "
                 "happened\n", cli.kill);
    rc = chaos::kExitInfra;
  }
  // The healing invariants only bind in storm mode: a replayed schedule
  // may leave victims permanently dead, which is an acceptable degraded
  // completion, not a bug.
  if (!replay && recovers) {
    if (!sys.degraded_ranks().empty()) {
      std::fprintf(stderr, "FAIL: degraded files remain after healing\n");
      rc = chaos::kExitInfra;
    }
    for (fabric::NodeId n : victims) {
      if (monitor.state(n) != resilience::TargetState::kHealthy) {
        std::fprintf(stderr, "FAIL: victim node %u not healed (state %s)\n",
                     n, resilience::target_state_name(monitor.state(n)));
        rc = chaos::kExitInfra;
      }
    }
    if (cli.kill > 0 && sys.healed_bytes() == 0) {
      std::fprintf(stderr, "FAIL: nothing was healed\n");
      rc = chaos::kExitInfra;
    }
  }
  std::printf("flight recorder: retained last %zu of %llu trace events\n",
              flight.size(),
              static_cast<unsigned long long>(flight.total_added()));
  if (off && cli.kill > 0 && off->fallbacks() == 0) {
    std::fprintf(stderr,
                 "FAIL: storm killed %u targets but no offload session "
                 "fell back to host compute\n",
                 cli.kill);
    rc = chaos::kExitInfra;
  }
  if (rc == 0) std::printf("storm absorbed: OK\n");
  return rc;
}
