// Cluster topology + storage balancer walkthrough (§III-F, Figure 6),
// ending with the POSIX interception shim (§III-C) running unmodified
// "application" calls against a runtime instance.
//
// Run:  ./build/examples/cluster_topology
#include <cstdio>

#include "nvmecr/posix_shim.h"
#include "nvmecr/runtime.h"

using namespace nvmecr;
using namespace nvmecr::literals;

int main() {
  nvmecr_rt::Cluster cluster;
  const auto& topo = cluster.topology();

  std::printf("cluster: %u nodes in %u racks (failure domains)\n",
              topo.node_count(), topo.rack_count());
  for (fabric::RackId r = 0; r < topo.rack_count(); ++r) {
    const auto nodes = topo.nodes_in_rack(r);
    std::printf("  rack %u: %zu nodes (%s)\n", r, nodes.size(),
                topo.node(nodes[0]).role == fabric::NodeRole::kCompute
                    ? "compute"
                    : "storage");
  }

  // Partner failure domains for the compute rack, sorted by switch hops.
  const auto partners = nvmecr_rt::StorageBalancer::partner_domains(
      topo, /*domain=*/0, cluster.storage_nodes());
  std::printf("partner domains of rack 0:");
  for (auto d : partners) {
    std::printf(" rack %u (%u hops)", d, topo.rack_distance(0, d));
  }
  std::printf("\n");

  // Allocate a 224-rank job: the balancer picks SSDs on partner domains
  // and round-robins ranks across them (Figure 6).
  nvmecr_rt::Scheduler scheduler(cluster);
  auto job = scheduler.allocate(/*nranks=*/224, /*procs_per_node=*/28,
                                /*partition_bytes=*/256_MiB);
  NVMECR_CHECK(job.ok());
  std::printf("\njob: 224 ranks -> %zu SSDs", job->assignment.ssd_nodes.size());
  for (uint32_t s = 0; s < job->assignment.ssd_nodes.size(); ++s) {
    std::printf("  [%s: %u ranks]",
                topo.node(job->assignment.ssd_nodes[s]).name.c_str(),
                job->assignment.ranks_per_ssd[s]);
  }
  std::printf("\nrank 0 -> SSD %u slot %u; rank 223 -> SSD %u slot %u\n",
              job->assignment.ssd_of_rank[0], job->assignment.slot_of_rank[0],
              job->assignment.ssd_of_rank[223],
              job->assignment.slot_of_rank[223]);

  // Every rank's checkpoint data lives outside its own failure domain.
  bool all_partnered = true;
  for (uint32_t r = 0; r < 224; ++r) {
    const auto ssd_node =
        job->assignment.ssd_nodes[job->assignment.ssd_of_rank[r]];
    all_partnered &= topo.failure_domain(ssd_node) !=
                     topo.failure_domain(job->rank_nodes[r]);
  }
  std::printf("fault isolation: every rank's data on a partner domain: %s\n",
              all_partnered ? "yes" : "NO");
  NVMECR_CHECK(all_partnered);

  // --- the POSIX shim: unmodified application calls (§III-C) -----------
  nvmecr_rt::NvmecrSystem system(cluster, *job, nvmecr_rt::RuntimeConfig{});
  nvmecr_rt::PosixShim shim;
  std::printf("\nintercepted symbols (%zu):",
              nvmecr_rt::PosixShim::intercepted_symbols().size());
  for (const auto& sym : nvmecr_rt::PosixShim::intercepted_symbols()) {
    std::printf(" %s", sym.c_str());
  }
  std::printf("\n");

  cluster.engine().run_task([](nvmecr_rt::NvmecrSystem& sys,
                               nvmecr_rt::PosixShim& sh) -> sim::Task<void> {
    // MPI_Init wrapper brings the runtime up...
    std::function<sim::Task<
        StatusOr<std::unique_ptr<baselines::StorageClient>>>()>
        connect = [&sys]() { return sys.connect(0); };
    NVMECR_CHECK((co_await sh.mpi_init(connect)).ok());
    // ...the "application" just calls POSIX...
    const int fd = co_await sh.open("/app.ckpt", /*create=*/true);
    NVMECR_CHECK(fd >= 0);
    NVMECR_CHECK(co_await sh.write(fd, 4_MiB) == static_cast<int64_t>(4_MiB));
    NVMECR_CHECK(co_await sh.fsync(fd) == 0);
    NVMECR_CHECK(co_await sh.close(fd) == 0);
    std::printf("shim: open/write/fsync/close redirected into the "
                "runtime (4 MiB checkpoint written)\n");
    // ...and MPI_Finalize tears the ephemeral runtime down with the job.
    NVMECR_CHECK((co_await sh.mpi_finalize()).ok());
  }(system, shim));

  scheduler.release(*job);
  std::printf("cluster_topology OK\n");
  return 0;
}
