#!/bin/sh
# Regenerates everything: tests, the perf gate, then every figure/table/
# ablation bench.
set -e
cd "$(dirname "$0")"
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
# Wall-clock perf smoke + regression gate (DESIGN.md §11). Quick mode
# keeps it CI-sized; the gate compares machine-independent speedup
# ratios against bench/perf_baseline.json and fails on >25% regression.
./build/bench/perf_suite --quick --out build/BENCH_PERF.json \
  --check bench/perf_baseline.json
for b in build/bench/*; do
  case "$b" in
    */perf_suite) continue ;;  # already ran above, gated
  esac
  "$b"
done 2>&1 | tee bench_output.txt
