// Tests for the kernel filesystem cost models and the mini-MPI layer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kernelfs/localfs.h"
#include "minimpi/comm.h"
#include "simcore/event.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using kernelfs::KernelCosts;
using kernelfs::LocalFs;
using kernelfs::LocalFsParams;

struct FsFixture {
  sim::Engine eng;
  hw::NvmeSsd ssd{eng, hw::SsdSpec{.capacity = 8_GiB}};
  uint32_t nsid = ssd.create_namespace(4_GiB).value();
};

TEST(LocalFsTest, OpenWriteFsyncReadLifecycle) {
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid, LocalFsParams::xfs());
  f.eng.run_task([](LocalFs& fs2) -> sim::Task<void> {
    auto fd = co_await fs2.open("/ckpt/rank0", true);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await fs2.write(*fd, 1_MiB)).ok());
    EXPECT_TRUE((co_await fs2.fsync(*fd)).ok());
    EXPECT_TRUE((co_await fs2.read(*fd, 1_MiB)).ok());
    EXPECT_TRUE((co_await fs2.close(*fd)).ok());
    EXPECT_TRUE((co_await fs2.unlink("/ckpt/rank0")).ok());
  }(fs));
  EXPECT_EQ(fs.bytes_written(), 1_MiB);
  EXPECT_EQ(fs.create_count(), 1u);
}

TEST(LocalFsTest, OpenWithoutCreateFailsOnMissing) {
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid);
  f.eng.run_task([](LocalFs& fs2) -> sim::Task<void> {
    auto fd = co_await fs2.open("/missing", false);
    EXPECT_EQ(fd.status().code(), ErrorCode::kNotFound);
  }(fs));
}

TEST(LocalFsTest, BadFdRejected) {
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid);
  f.eng.run_task([](LocalFs& fs2) -> sim::Task<void> {
    EXPECT_EQ((co_await fs2.write(99, 100)).code(), ErrorCode::kBadFd);
    EXPECT_EQ((co_await fs2.fsync(99)).code(), ErrorCode::kBadFd);
    EXPECT_EQ((co_await fs2.close(99)).code(), ErrorCode::kBadFd);
  }(fs));
}

TEST(LocalFsTest, KernelTimeDominatesIoBoundRun) {
  // For a write+fsync workload nearly all time is inside syscalls —
  // the §IV-D observation for ext4/XFS (76-79% of benchmark time).
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid, LocalFsParams::ext4());
  f.eng.run_task([](LocalFs& fs2) -> sim::Task<void> {
    auto fd = co_await fs2.open("/dump", true);
    for (int i = 0; i < 64; ++i) co_await fs2.write(*fd, 1_MiB);
    co_await fs2.fsync(*fd);
    co_await fs2.close(*fd);
  }(fs));
  const double frac =
      static_cast<double>(fs.kernel_time()) / static_cast<double>(f.eng.now());
  EXPECT_GT(frac, 0.95);  // the whole run is syscalls here
}

TEST(LocalFsTest, Ext4SlowerThanXfsOnWriteback) {
  auto run = [](LocalFsParams params) {
    FsFixture f;
    LocalFs fs(f.eng, f.ssd, f.nsid, params);
    f.eng.run_task([](LocalFs& fs2) -> sim::Task<void> {
      auto fd = co_await fs2.open("/dump", true);
      for (int i = 0; i < 128; ++i) co_await fs2.write(*fd, 1_MiB);
      co_await fs2.fsync(*fd);
    }(fs));
    return f.eng.now();
  };
  const SimTime ext4 = run(LocalFsParams::ext4());
  const SimTime xfs = run(LocalFsParams::xfs());
  EXPECT_GT(ext4, xfs);
  // The writeback-pipeline ratio (1250 vs 1900 MB/s) should show through.
  EXPECT_GT(static_cast<double>(ext4) / static_cast<double>(xfs), 1.2);
}

TEST(LocalFsTest, ConcurrentCreatesSerializeOnDirLock) {
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid);
  sim::JoinCounter join(f.eng);
  for (int i = 0; i < 16; ++i) {
    join.spawn([](LocalFs& fs2, int id) -> sim::Task<void> {
      auto fd = co_await fs2.open("/f" + std::to_string(id), true);
      EXPECT_TRUE(fd.ok());
    }(fs, i));
  }
  f.eng.run();
  EXPECT_EQ(fs.create_count(), 16u);
  // 16 creates serialized at >= dir_op_cost each.
  EXPECT_GE(f.eng.now(), 16 * LocalFsParams{}.dir_op_cost);
}

TEST(LocalFsTest, FsyncWithNoDirtyDataIsCheap) {
  FsFixture f;
  LocalFs fs(f.eng, f.ssd, f.nsid);
  f.eng.run_task([](sim::Engine& e, LocalFs& fs2) -> sim::Task<void> {
    auto fd = co_await fs2.open("/empty", true);
    const SimTime before = e.now();
    co_await fs2.fsync(*fd);
    // Journal commit + bounded cache flush only; far below a data
    // writeback.
    EXPECT_LT(e.now() - before, 2_ms);
  }(f.eng, fs));
}

// ---------------------------------------------------------------------
// minimpi
// ---------------------------------------------------------------------

TEST(MiniMpiTest, BarrierReleasesTogether) {
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 8);
  std::vector<SimTime> times(8);
  for (int r = 0; r < 8; ++r) {
    eng.spawn([](sim::Engine& e, minimpi::Comm& c, std::vector<SimTime>& t,
                 int rank) -> sim::Task<void> {
      co_await e.delay((rank + 1) * 10_us);
      co_await c.barrier(rank);
      t[static_cast<size_t>(rank)] = e.now();
    }(eng, *comm, times, r));
  }
  eng.run();
  for (int r = 0; r < 8; ++r) EXPECT_EQ(times[static_cast<size_t>(r)], times[0]);
  EXPECT_GT(times[0], 80_us);  // slowest arrival + collective cost
  EXPECT_EQ(eng.live_roots(), 0);
}

TEST(MiniMpiTest, AllgatherCollectsInRankOrder) {
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 5);
  std::vector<std::vector<uint64_t>> results(5);
  for (int r = 0; r < 5; ++r) {
    eng.spawn([](minimpi::Comm& c, std::vector<std::vector<uint64_t>>& out,
                 int rank) -> sim::Task<void> {
      out[static_cast<size_t>(rank)] =
          co_await c.allgather(rank, static_cast<uint64_t>(rank * 100));
    }(*comm, results, r));
  }
  eng.run();
  const std::vector<uint64_t> expect{0, 100, 200, 300, 400};
  for (const auto& res : results) EXPECT_EQ(res, expect);
}

TEST(MiniMpiTest, BcastDistributesRootValue) {
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 4);
  std::vector<uint64_t> got(4);
  for (int r = 0; r < 4; ++r) {
    eng.spawn([](minimpi::Comm& c, std::vector<uint64_t>& out,
                 int rank) -> sim::Task<void> {
      out[static_cast<size_t>(rank)] =
          co_await c.bcast(rank, rank == 2 ? 777u : 0u, 2);
    }(*comm, got, r));
  }
  eng.run();
  for (auto v : got) EXPECT_EQ(v, 777u);
}

TEST(MiniMpiTest, SplitGroupsByColor) {
  // 12 ranks split by rank % 3, the MPI_COMM_CR pattern (Figure 6).
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 12);
  std::vector<minimpi::Comm::SplitResult> results(12);
  for (int r = 0; r < 12; ++r) {
    eng.spawn([](minimpi::Comm& c, std::vector<minimpi::Comm::SplitResult>& out,
                 int rank) -> sim::Task<void> {
      out[static_cast<size_t>(rank)] = co_await c.split(rank, rank % 3);
    }(*comm, results, r));
  }
  eng.run();
  std::set<minimpi::Comm*> comms;
  for (int r = 0; r < 12; ++r) {
    const auto& res = results[static_cast<size_t>(r)];
    ASSERT_NE(res.comm, nullptr);
    EXPECT_EQ(res.comm->size(), 4);
    EXPECT_EQ(res.rank, r / 3);  // ranks 0,3,6,9 -> 0,1,2,3 within color
    comms.insert(res.comm);
  }
  EXPECT_EQ(comms.size(), 3u);
}

TEST(MiniMpiTest, SubCommunicatorCollectivesWork) {
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 6);
  std::vector<uint64_t> sums(6, 0);
  for (int r = 0; r < 6; ++r) {
    eng.spawn([](minimpi::Comm& c, std::vector<uint64_t>& out,
                 int rank) -> sim::Task<void> {
      auto sub = co_await c.split(rank, rank < 3 ? 0 : 1);
      auto vals = co_await sub.comm->allgather(sub.rank,
                                               static_cast<uint64_t>(rank));
      uint64_t sum = 0;
      for (auto v : vals) sum += v;
      out[static_cast<size_t>(rank)] = sum;
    }(*comm, sums, r));
  }
  eng.run();
  for (int r = 0; r < 3; ++r) EXPECT_EQ(sums[static_cast<size_t>(r)], 0u + 1 + 2);
  for (int r = 3; r < 6; ++r) EXPECT_EQ(sums[static_cast<size_t>(r)], 3u + 4 + 5);
}

TEST(MiniMpiTest, RepeatedBarriersReuseComm) {
  sim::Engine eng;
  auto comm = minimpi::Comm::world(eng, 3);
  int rounds_done = 0;
  for (int r = 0; r < 3; ++r) {
    eng.spawn([](minimpi::Comm& c, int& done, int rank) -> sim::Task<void> {
      for (int i = 0; i < 5; ++i) co_await c.barrier(rank);
      if (rank == 0) done = 5;
    }(*comm, rounds_done, r));
  }
  eng.run();
  EXPECT_EQ(rounds_done, 5);
  EXPECT_EQ(eng.live_roots(), 0);
}

}  // namespace
}  // namespace nvmecr
