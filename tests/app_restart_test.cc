// Restart verification for the app-workload family (DESIGN.md §16):
// the AppDriver kill-and-restart harness over the modeled applications
// (CoMD, miniFE-CG, NPB-SP shaped state evolution).
//
// Layers covered:
//  * registry/model unit tests — every registered preset round-trips
//    serialize -> deserialize to an equal digest; corrupt images are
//    rejected typed; digests are rank-seeded.
//  * the verification contract itself — golden runs are bit-identical
//    across independent simulation stacks, and verify_restart actually
//    fails on divergent runs.
//  * the recovery-path matrix — one killed run per app restored through
//    at least two distinct paths (live fast-tier session, PFS copy),
//    and for miniFE-CG through all four (fast, XOR reconstruction after
//    a failure-domain loss, failover spare after a mid-run target
//    death, PFS), every path finishing digest- and residual-identical
//    to the uninterrupted golden run.
//  * kill-point edge cases — death before the first checkpoint
//    (restart from initial state), death during the final checkpoint,
//    and three back-to-back kill/restore cycles.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "baselines/models.h"
#include "nvmecr/multilevel.h"
#include "nvmecr/runtime.h"
#include "redundancy/engine.h"
#include "redundancy/reconstruct.h"
#include "resilience/failover.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "workloads/app_driver.h"
#include "workloads/apps.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::RestoreSource;
using nvmecr_rt::Scheduler;
using workloads::AppDriver;
using workloads::AppRankState;
using workloads::AppRunParams;
using workloads::AppRunResult;
using workloads::AppSpec;
using workloads::KillPoint;
using workloads::KillSpec;
using workloads::RestorePlan;

ClusterSpec make_spec(uint32_t storage_nodes, uint32_t storage_racks,
                      uint32_t compute_nodes = 4) {
  ClusterSpec spec;
  spec.compute_nodes = compute_nodes;
  spec.storage_nodes = storage_nodes;
  spec.storage_racks = storage_racks;
  return spec;
}

/// Small IO profile: the simulated checkpoint streams shrink to 2 MiB
/// per rank so the whole matrix runs in seconds; the verified solver
/// state (AppRunParams::elems doubles per rank) is independent of them.
AppRunParams test_params(const AppSpec& spec, uint32_t ranks,
                         uint32_t epochs, uint32_t pfs_interval = 0) {
  AppRunParams p;
  p.io = workloads::io_params_for(spec, ranks);
  p.io.procs_per_node = 1;
  p.io.atoms_per_rank = 4096;
  p.io.bytes_per_atom = 512;
  p.io.io_chunk = 1_MiB;
  p.io.checkpoints = epochs;
  p.io.compute_per_period = 2 * kMillisecond;
  p.io.keep_last = epochs + 1;  // retain everything: probe freely
  p.pfs_interval = pfs_interval;
  return p;
}

/// A self-contained plain stack (runtime only, no redundancy layers).
/// Golden runs always use a fresh one: the model state evolution is
/// sim-time- and routing-independent, so its results compare
/// bit-for-bit against any other stack running the same spec + seed.
struct Stack {
  Cluster cluster;
  Scheduler sched;
  std::optional<JobAllocation> job;
  std::optional<nvmecr_rt::NvmecrSystem> fast;
  std::optional<baselines::LustreModel> pfs;

  explicit Stack(uint32_t ranks, bool with_pfs = false)
      : cluster(make_spec(4, 2)), sched(cluster) {
    auto j = sched.allocate(ranks, /*procs_per_node=*/1, 256_MiB,
                            cluster.spec().storage_nodes);
    NVMECR_CHECK(j.ok());
    job = *j;
    fast.emplace(cluster, *job, nvmecr_rt::RuntimeConfig{});
    if (with_pfs) pfs.emplace(cluster, /*procs_per_node=*/1);
  }
};

AppRunResult golden_run(const AppSpec& spec, uint32_t ranks,
                        uint32_t epochs) {
  Stack stack(ranks);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   test_params(spec, ranks, epochs));
  auto r = driver.run();
  NVMECR_CHECK(r.ok());
  return *r;
}

/// Advances one single-rank epoch (with nranks == 1 the global
/// reductions degenerate to the local contributions) and returns the
/// epoch residual.
double step_single_rank(AppRankState& state, uint32_t epoch) {
  const double l1 = state.compute(epoch);
  const double l2 = state.fold(epoch, l1);
  return state.finish(epoch, l2);
}

// ---------------------------------------------------------------------------
// Registry + model units

TEST(AppRegistryTest, RegistryNamesAreUniqueAndLookupWorks) {
  const auto& reg = workloads::app_registry();
  ASSERT_GE(reg.size(), 7u);
  std::set<std::string> names;
  for (const auto& spec : reg) names.insert(spec.name);
  EXPECT_EQ(names.size(), reg.size());
  for (const char* name : {"CoMD", "miniFE-CG", "NPB-SP", "AMG", "Ember",
                           "ExaMiniMD", "miniAMR"}) {
    const AppSpec* spec = workloads::find_app(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_STREQ(spec->name, name);
  }
  EXPECT_EQ(workloads::find_app("no-such-app"), nullptr);
}

// Satellite regression for the preset rework: every registered preset's
// model state round-trips serialize -> deserialize to an equal digest,
// and the restored copy continues producing bit-identical residuals.
TEST(AppRegistryTest, EveryPresetRoundTripsSerializeDeserialize) {
  for (const auto& spec : workloads::app_registry()) {
    auto state = workloads::make_rank_state(spec, /*rank=*/0, /*nranks=*/1,
                                            /*seed=*/0x5EED, /*elems=*/64);
    for (uint32_t e = 0; e < 3; ++e) step_single_rank(*state, e);

    std::vector<std::byte> image;
    state->serialize(image);
    auto copy = workloads::make_rank_state(spec, 0, 1, 0x5EED, 64);
    ASSERT_TRUE(copy->deserialize(image).ok()) << spec.name;
    EXPECT_EQ(copy->digest(), state->digest()) << spec.name;

    const double r1 = step_single_rank(*state, 3);
    const double r2 = step_single_rank(*copy, 3);
    EXPECT_EQ(std::bit_cast<uint64_t>(r1), std::bit_cast<uint64_t>(r2))
        << spec.name;
    EXPECT_EQ(copy->digest(), state->digest()) << spec.name;
  }
}

TEST(AppRegistryTest, DigestsAreRankSeeded) {
  const AppSpec& spec = *workloads::find_app("miniFE-CG");
  auto r0 = workloads::make_rank_state(spec, 0, 2, 0x5EED, 64);
  auto r0_again = workloads::make_rank_state(spec, 0, 2, 0x5EED, 64);
  auto r1 = workloads::make_rank_state(spec, 1, 2, 0x5EED, 64);
  EXPECT_EQ(r0->digest(), r0_again->digest());
  EXPECT_NE(r0->digest(), r1->digest());
  EXPECT_NE(r0->digest_seed(), r1->digest_seed());
}

TEST(AppRegistryTest, DeserializeRejectsCorruptImages) {
  const AppSpec& cg = *workloads::find_app("miniFE-CG");
  const AppSpec& sp = *workloads::find_app("NPB-SP");
  auto state = workloads::make_rank_state(cg, 0, 1, 0x5EED, 64);
  std::vector<std::byte> image;
  state->serialize(image);

  auto copy = workloads::make_rank_state(cg, 0, 1, 0x5EED, 64);
  std::vector<std::byte> truncated(image.begin(),
                                   image.begin() + image.size() / 2);
  EXPECT_FALSE(copy->deserialize(truncated).ok());

  std::vector<std::byte> flipped = image;
  flipped[0] ^= std::byte{0xFF};  // magic
  EXPECT_FALSE(copy->deserialize(flipped).ok());

  // Cross-app image: an SP state must refuse a CG snapshot.
  auto other = workloads::make_rank_state(sp, 0, 1, 0x5EED, 64);
  EXPECT_FALSE(other->deserialize(image).ok());
}

// ---------------------------------------------------------------------------
// Verification contract

TEST(AppDriverTest, GoldenRunsAreBitIdenticalAcrossStacks) {
  const AppSpec& spec = *workloads::find_app("miniFE-CG");
  const AppRunResult a = golden_run(spec, 4, 5);
  const AppRunResult b = golden_run(spec, 4, 5);
  ASSERT_EQ(a.residuals.size(), b.residuals.size());
  for (size_t i = 0; i < a.residuals.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.residuals[i]),
              std::bit_cast<uint64_t>(b.residuals[i]));
  }
  EXPECT_EQ(a.rank_digests, b.rank_digests);
  EXPECT_EQ(a.job_digest, b.job_digest);
  EXPECT_TRUE(workloads::verify_restart(a, b).ok());
}

TEST(AppDriverTest, VerifyRestartDetectsDivergence) {
  const AppSpec& spec = *workloads::find_app("NPB-SP");
  Stack stack(4);
  AppRunParams params = test_params(spec, 4, 5);
  params.seed = 0xD1FFE12E47;
  AppDriver driver(stack.cluster, *stack.fast, spec, params);
  auto other = driver.run();
  ASSERT_TRUE(other.ok());

  const AppRunResult golden = golden_run(spec, 4, 5);
  const Status st = workloads::verify_restart(golden, *other);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Recovery-path matrix: per app, one killed run restored through two
// distinct paths (fast-tier session, then the PFS copy), both verified
// digest- and residual-identical to the golden run.

class RestorePathMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RestorePathMatrixTest, KilledRunRestoresFromFastAndPfs) {
  const AppSpec& spec = *workloads::find_app(GetParam());
  const uint32_t ranks = 4, epochs = 6;
  const AppRunResult golden = golden_run(spec, ranks, epochs);

  // Multi-level routing: even epochs go to the PFS, odd to the fast
  // tier. The mid-checkpoint kill at epoch 3 leaves 0(pfs), 1(fast),
  // 2(pfs) committed and abandons epoch 3's stream half-written.
  Stack stack(ranks, /*with_pfs=*/true);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   test_params(spec, ranks, epochs, /*pfs_interval=*/2),
                   &*stack.pfs);
  KillSpec kill{/*epoch=*/3, KillPoint::kMidCheckpoint};
  auto killed = driver.run(kill);
  ASSERT_TRUE(killed.ok()) << killed.status().to_string();
  EXPECT_TRUE(killed->killed);
  const workloads::CheckpointRecord* abandoned =
      driver.ledger().find(/*rank=*/0, /*epoch=*/3);
  EXPECT_TRUE(abandoned == nullptr || !abandoned->committed);

  // Path 1: the live fast-tier sessions. Tier tags confine the probe to
  // fast-routed epochs, so it restores epoch 1 and resumes 2..5.
  RestorePlan fast_plan;
  fast_plan.chain = [&driver](uint32_t rank) {
    return std::vector<RestoreSource>{{driver.session(rank), false, "fast"}};
  };
  fast_plan.resume_checkpoints = false;
  auto via_fast = driver.restart(fast_plan);
  ASSERT_TRUE(via_fast.ok()) << via_fast.status().to_string();
  EXPECT_EQ(via_fast->restored_epoch, 1u);
  ASSERT_TRUE(workloads::verify_restart(golden, *via_fast).ok())
      << workloads::verify_restart(golden, *via_fast).to_string();

  // Path 2: the PFS copies of the *same* killed run (the ledger was not
  // touched by path 1) — restores epoch 2, resumes 3..5.
  RestorePlan pfs_plan;
  pfs_plan.chain = [&driver](uint32_t rank) {
    return std::vector<RestoreSource>{
        {driver.pfs_session(rank), true, "pfs"}};
  };
  pfs_plan.resume_checkpoints = false;
  auto via_pfs = driver.restart(pfs_plan);
  ASSERT_TRUE(via_pfs.ok()) << via_pfs.status().to_string();
  EXPECT_EQ(via_pfs->restored_epoch, 2u);
  ASSERT_TRUE(workloads::verify_restart(golden, *via_pfs).ok())
      << workloads::verify_restart(golden, *via_pfs).to_string();

  EXPECT_EQ(via_fast->job_digest, via_pfs->job_digest);
  EXPECT_EQ(via_fast->job_digest, golden.job_digest);
}

INSTANTIATE_TEST_SUITE_P(Apps, RestorePathMatrixTest,
                         ::testing::Values("CoMD", "miniFE-CG", "NPB-SP"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Four recovery paths for miniFE-CG. Fast, XOR reconstruction, and PFS
// restore the *same* killed run (in that order: the domain loss that
// makes reconstruction interesting happens between the fast and XOR
// restores). The failover spare lives in its own stack below — a spare
// only exists after a real mid-run target death — and its final digest
// must still equal the same golden's.

TEST(FourPathRestoreTest, FastThenXorThenPfsRestoreIdentically) {
  const AppSpec& spec = *workloads::find_app("miniFE-CG");
  const uint32_t ranks = 4, epochs = 6;
  const AppRunResult golden = golden_run(spec, ranks, epochs);

  // XOR(4) needs the four primaries in four distinct failure domains
  // plus a fifth for parity.
  Cluster cluster(make_spec(/*storage_nodes=*/5, /*storage_racks=*/5));
  Scheduler sched(cluster);
  auto job = sched.allocate(ranks, /*procs_per_node=*/1, 256_MiB, ranks);
  ASSERT_TRUE(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, {});
  redundancy::RedundancyOptions opts;
  opts.scheme = redundancy::Scheme::kXor;
  opts.xor_set_size = 4;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           opts);
  ASSERT_TRUE(dep.ok()) << dep.status().to_string();
  redundancy::RedundantSystem& sys = *dep->system;
  baselines::LustreModel pfs(cluster, /*procs_per_node=*/1);

  AppDriver driver(cluster, sys, spec,
                   test_params(spec, ranks, epochs, /*pfs_interval=*/2),
                   &pfs);
  KillSpec kill{/*epoch=*/3, KillPoint::kAfterCheckpoint};
  auto killed = driver.run(kill);
  ASSERT_TRUE(killed.ok()) << killed.status().to_string();
  cluster.engine().run_task(
      [](redundancy::RedundantSystem& s) -> sim::Task<void> {
        co_await s.quiesce();
      }(sys));

  // Path 1: live fast-tier sessions, newest fast epoch (3).
  RestorePlan fast_plan;
  fast_plan.chain = [&driver](uint32_t rank) {
    return std::vector<RestoreSource>{{driver.session(rank), false, "fast"}};
  };
  fast_plan.resume_checkpoints = false;
  auto via_fast = driver.restart(fast_plan);
  ASSERT_TRUE(via_fast.ok()) << via_fast.status().to_string();
  EXPECT_EQ(via_fast->restored_epoch, 3u);
  ASSERT_TRUE(workloads::verify_restart(golden, *via_fast).ok());

  // *** rank 0's failure domain dies ***
  const fabric::RackId victim_domain = cluster.topology().failure_domain(
      job->assignment.ssd_nodes[job->assignment.ssd_of_rank[0]]);
  for (fabric::NodeId n : cluster.storage_nodes()) {
    if (cluster.topology().failure_domain(n) == victim_domain) {
      cluster.storage_ssd(cluster.storage_ssd_index(n)).fail_device();
    }
  }

  // Path 2: XOR reconstruction — rank 0's epoch-3 checkpoint is decoded
  // from the surviving set members + parity, the other ranks read their
  // fast tier straight through the same clients.
  redundancy::Reconstructor recon(sys);
  std::vector<std::unique_ptr<baselines::StorageClient>> recon_clients;
  for (uint32_t r = 0; r < ranks; ++r) {
    recon_clients.push_back(recon.client(r));
  }
  RestorePlan xor_plan;
  xor_plan.chain = [&recon_clients](uint32_t rank) {
    return std::vector<RestoreSource>{
        {recon_clients[rank].get(), false, "reconstructed"}};
  };
  xor_plan.resume_checkpoints = false;
  auto via_xor = driver.restart(xor_plan);
  ASSERT_TRUE(via_xor.ok()) << via_xor.status().to_string();
  EXPECT_EQ(via_xor->restored_epoch, 3u);
  ASSERT_TRUE(workloads::verify_restart(golden, *via_xor).ok());
  const redundancy::RecoveryReport* rep = recon.find_report(
      0, workloads::app_checkpoint_path(spec, /*epoch=*/3, /*rank=*/0));
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->source, redundancy::RecoverySource::kXor);
  EXPECT_TRUE(rep->digest_ok);

  // Path 3: the PFS copies (newest PFS epoch is 2).
  RestorePlan pfs_plan;
  pfs_plan.chain = [&driver](uint32_t rank) {
    return std::vector<RestoreSource>{
        {driver.pfs_session(rank), true, "pfs"}};
  };
  pfs_plan.resume_checkpoints = false;
  auto via_pfs = driver.restart(pfs_plan);
  ASSERT_TRUE(via_pfs.ok()) << via_pfs.status().to_string();
  EXPECT_EQ(via_pfs->restored_epoch, 2u);
  ASSERT_TRUE(workloads::verify_restart(golden, *via_pfs).ok());

  EXPECT_EQ(via_fast->job_digest, golden.job_digest);
  EXPECT_EQ(via_xor->job_digest, golden.job_digest);
  EXPECT_EQ(via_pfs->job_digest, golden.job_digest);
}

TEST(FourPathRestoreTest, FailoverSpareRestoresIdentically) {
  const AppSpec& spec = *workloads::find_app("miniFE-CG");
  const uint32_t ranks = 4, epochs = 6;
  const AppRunResult golden = golden_run(spec, ranks, epochs);

  Cluster cluster(make_spec(/*storage_nodes=*/4, /*storage_racks=*/4));
  Scheduler sched(cluster);
  auto job = sched.allocate(ranks, /*procs_per_node=*/1, 256_MiB, ranks);
  ASSERT_TRUE(job.ok());
  resilience::HealthMonitor monitor(cluster.engine(), cluster.topology());
  nvmecr_rt::RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, resilience::RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  resilience::ResilientSystem sys(cluster, sched, primary, monitor, *job,
                                  config);

  AppDriver driver(cluster, sys, spec, test_params(spec, ranks, epochs));

  // Rank 0's primary target dies for good mid-run, during the first
  // checkpoint window: retries exhaust, the monitor declares it dead,
  // and every later rank-0 checkpoint completes degraded on a spare in
  // a partner domain.
  const fabric::NodeId node = sys.primary_node_of(0);
  cluster.storage_ssd(cluster.storage_ssd_index(node))
      .schedule_crash(/*at=*/2500 * kMicrosecond);

  KillSpec kill{/*epoch=*/4, KillPoint::kAfterCheckpoint};
  auto killed = driver.run(kill);
  ASSERT_TRUE(killed.ok()) << killed.status().to_string();
  EXPECT_GE(sys.failovers(), 1u);
  EXPECT_FALSE(sys.degraded_ranks().empty());

  // Restore with the failover view first in the chain: it serves
  // exactly the degraded/healed files (rank 0's post-crash checkpoints,
  // living on the spare) and reports NotFound for everything else, so
  // the never-degraded ranks fall through to their live sessions.
  const std::string degraded_path =
      workloads::app_checkpoint_path(spec, /*epoch=*/4, /*rank=*/0);
  ASSERT_NE(sys.degraded_entry(0, degraded_path), nullptr);
  std::vector<std::unique_ptr<baselines::StorageClient>> views;
  for (uint32_t r = 0; r < ranks; ++r) {
    views.push_back(sys.failover_view(r));
  }
  RestorePlan plan;
  plan.chain = [&views, &driver](uint32_t rank) {
    return std::vector<RestoreSource>{
        {views[rank].get(), false, "failover"},
        {driver.session(rank), false, "fast"}};
  };
  plan.resume_checkpoints = false;
  auto restored = driver.restart(plan);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_EQ(restored->restored_epoch, 4u);
  ASSERT_TRUE(workloads::verify_restart(golden, *restored).ok())
      << workloads::verify_restart(golden, *restored).to_string();
  EXPECT_EQ(restored->job_digest, golden.job_digest);
}

// ---------------------------------------------------------------------------
// Kill-point edge cases

TEST(KillEdgeCaseTest, KillBeforeFirstCheckpointRestartsFromInitialState) {
  const AppSpec& spec = *workloads::find_app("NPB-SP");
  const AppRunResult golden = golden_run(spec, 4, 5);

  Stack stack(4);
  AppDriver driver(stack.cluster, *stack.fast, spec, test_params(spec, 4, 5));
  KillSpec kill{/*epoch=*/0, KillPoint::kBeforeCheckpoint};
  auto killed = driver.run(kill);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(driver.ledger().committed_epochs(4).empty());

  auto restored = driver.restart();
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_TRUE(restored->from_initial);
  EXPECT_EQ(restored->restored_epoch, workloads::kNoRestoreEpoch);
  EXPECT_EQ(restored->first_epoch, 0u);
  ASSERT_TRUE(workloads::verify_restart(golden, *restored).ok())
      << workloads::verify_restart(golden, *restored).to_string();
}

TEST(KillEdgeCaseTest, KillDuringFinalCheckpointRestoresPreviousEpoch) {
  const AppSpec& spec = *workloads::find_app("CoMD");
  const uint32_t epochs = 5;
  const AppRunResult golden = golden_run(spec, 4, epochs);

  Stack stack(4);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   test_params(spec, 4, epochs));
  KillSpec kill{/*epoch=*/epochs - 1, KillPoint::kMidCheckpoint};
  auto killed = driver.run(kill);
  ASSERT_TRUE(killed.ok());
  // The final checkpoint's stream was abandoned half-written: epoch 4
  // must not be a restart candidate.
  const workloads::CheckpointRecord* last = driver.ledger().find(0, 4);
  EXPECT_TRUE(last == nullptr || !last->committed);

  auto restored = driver.restart();
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_EQ(restored->restored_epoch, epochs - 2);
  EXPECT_EQ(restored->residuals.size(), 1u);
  ASSERT_TRUE(workloads::verify_restart(golden, *restored).ok())
      << workloads::verify_restart(golden, *restored).to_string();
}

TEST(KillEdgeCaseTest, ThreeBackToBackKillRestoreCycles) {
  const AppSpec& spec = *workloads::find_app("miniFE-CG");
  const uint32_t epochs = 8;
  const AppRunResult golden = golden_run(spec, 4, epochs);

  Stack stack(4);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   test_params(spec, 4, epochs));

  // Cycle 1: die mid-checkpoint at epoch 2 (committed: 0, 1).
  auto killed = driver.run(KillSpec{2, KillPoint::kMidCheckpoint});
  ASSERT_TRUE(killed.ok());
  ASSERT_TRUE(workloads::verify_residuals(golden, *killed).ok());

  // Cycle 2: restore epoch 1, resume writing checkpoints, die again
  // after epoch 4's checkpoint committed.
  auto second = driver.restart({}, KillSpec{4, KillPoint::kAfterCheckpoint});
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second->restored_epoch, 1u);
  EXPECT_TRUE(second->killed);
  ASSERT_TRUE(workloads::verify_residuals(golden, *second).ok())
      << workloads::verify_residuals(golden, *second).to_string();

  // Cycle 3: restore epoch 4, die once more mid-checkpoint at epoch 6.
  auto third = driver.restart({}, KillSpec{6, KillPoint::kMidCheckpoint});
  ASSERT_TRUE(third.ok()) << third.status().to_string();
  EXPECT_EQ(third->restored_epoch, 4u);
  ASSERT_TRUE(workloads::verify_residuals(golden, *third).ok());

  // Final restore runs to completion: epoch 5 was cycle 3's newest
  // committed checkpoint, and the finished run must be bit-identical
  // to the golden.
  auto last = driver.restart();
  ASSERT_TRUE(last.ok()) << last.status().to_string();
  EXPECT_EQ(last->restored_epoch, 5u);
  EXPECT_FALSE(last->killed);
  ASSERT_TRUE(workloads::verify_restart(golden, *last).ok())
      << workloads::verify_restart(golden, *last).to_string();
}

}  // namespace
}  // namespace nvmecr
