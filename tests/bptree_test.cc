// Unit + property tests for the DRAM B+Tree backing the microfs
// namespace.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "microfs/bptree.h"

namespace nvmecr::microfs {
namespace {

TEST(BpTreeTest, EmptyTree) {
  BpTree<int, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_FALSE(t.erase(1));
}

TEST(BpTreeTest, InsertFind) {
  BpTree<int, std::string> t;
  EXPECT_TRUE(t.insert(5, "five"));
  EXPECT_TRUE(t.insert(3, "three"));
  EXPECT_TRUE(t.insert(8, "eight"));
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), "five");
  EXPECT_EQ(t.find(4), nullptr);
}

TEST(BpTreeTest, InsertOverwrites) {
  BpTree<int, int> t;
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 20));  // overwrite, not new
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(1), 20);
}

TEST(BpTreeTest, SplitsGrowHeight) {
  BpTree<int, int, 8> t;
  for (int i = 0; i < 1000; ++i) t.insert(i, i * 2);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GE(t.height(), 3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(t.find(i), nullptr) << i;
    EXPECT_EQ(*t.find(i), i * 2);
  }
}

TEST(BpTreeTest, ForEachIsOrdered) {
  BpTree<int, int, 8> t;
  // Insert in reverse to stress ordering.
  for (int i = 499; i >= 0; --i) t.insert(i, i);
  std::vector<int> keys;
  t.for_each([&](const int& k, const int&) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(keys[static_cast<size_t>(i)], i);
}

TEST(BpTreeTest, ScanFromStartsAtLowerBound) {
  BpTree<int, int, 8> t;
  for (int i = 0; i < 100; i += 2) t.insert(i, i);  // evens
  std::vector<int> seen;
  t.scan_from(31, [&](const int& k, const int&) {
    seen.push_back(k);
    return seen.size() < 5;
  });
  EXPECT_EQ(seen, (std::vector<int>{32, 34, 36, 38, 40}));
}

TEST(BpTreeTest, EraseLeafSimple) {
  BpTree<int, int> t;
  t.insert(1, 1);
  t.insert(2, 2);
  EXPECT_TRUE(t.erase(1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_NE(t.find(2), nullptr);
  EXPECT_TRUE(t.erase(2));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 0);
}

TEST(BpTreeTest, EraseWithRebalancing) {
  BpTree<int, int, 8> t;
  for (int i = 0; i < 300; ++i) t.insert(i, i);
  // Erase everything in an order that forces borrows and merges.
  for (int i = 0; i < 300; i += 2) EXPECT_TRUE(t.erase(i)) << i;
  for (int i = 299; i >= 1; i -= 2) EXPECT_TRUE(t.erase(i)) << i;
  EXPECT_TRUE(t.empty());
}

TEST(BpTreeTest, StringKeysForPaths) {
  BpTree<std::string, uint64_t> t;
  t.insert("/", 1);
  t.insert("/ckpt", 2);
  t.insert("/ckpt/rank0", 3);
  t.insert("/ckpt/rank1", 4);
  std::vector<std::string> under;
  t.scan_from("/ckpt/", [&](const std::string& k, const uint64_t&) {
    if (k.rfind("/ckpt/", 0) != 0) return false;
    under.push_back(k);
    return true;
  });
  EXPECT_EQ(under, (std::vector<std::string>{"/ckpt/rank0", "/ckpt/rank1"}));
}

TEST(BpTreeTest, MemoryFootprintGrows) {
  BpTree<uint64_t, uint64_t, 16> t;
  const size_t empty = t.memory_footprint();
  for (uint64_t i = 0; i < 10000; ++i) t.insert(i, i);
  EXPECT_GT(t.memory_footprint(), empty + 10000 * 16);
}

// Property test: random interleaved inserts/erases/overwrites must match
// std::map exactly, at several fanouts.
template <int Fanout>
void run_fuzz(uint64_t seed, int ops) {
  BpTree<uint32_t, uint32_t, Fanout> t;
  std::map<uint32_t, uint32_t> ref;
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.uniform(500));
    const auto action = rng.uniform(10);
    if (action < 6) {
      const auto val = static_cast<uint32_t>(rng.next());
      EXPECT_EQ(t.insert(key, val), ref.insert_or_assign(key, val).second);
    } else if (action < 9) {
      EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
    } else {
      const auto* found = t.find(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  // Final full comparison via ordered iteration.
  std::vector<std::pair<uint32_t, uint32_t>> got, want(ref.begin(), ref.end());
  t.for_each([&](const uint32_t& k, const uint32_t& v) {
    got.emplace_back(k, v);
  });
  EXPECT_EQ(got, want);
}

TEST(BpTreePropertyTest, FuzzAgainstStdMapFanout4) { run_fuzz<4>(11, 6000); }
TEST(BpTreePropertyTest, FuzzAgainstStdMapFanout8) { run_fuzz<8>(22, 6000); }
TEST(BpTreePropertyTest, FuzzAgainstStdMapFanout32) { run_fuzz<32>(33, 6000); }

TEST(BpTreePropertyTest, SequentialInsertThenFullErase) {
  BpTree<int, int, 8> t;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; ++i) ASSERT_TRUE(t.insert(i, i));
    for (int i = 0; i < 2000; ++i) ASSERT_TRUE(t.erase(i)) << i;
    ASSERT_TRUE(t.empty());
  }
}

}  // namespace
}  // namespace nvmecr::microfs
