// Tests for the microfs persistence structures: circular block pool,
// operation log (with coalescing), dirent codec, inode table.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/units.h"
#include "hw/ram_device.h"
#include "microfs/block_pool.h"
#include "microfs/dirfile.h"
#include "microfs/inode.h"
#include "microfs/oplog.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

// ---------------------------------------------------------------------
// BlockPool
// ---------------------------------------------------------------------

TEST(BlockPoolTest, AllocInIndexOrderWhenFresh) {
  BlockPool pool(8);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(*pool.alloc(), i);
  EXPECT_EQ(pool.alloc().status().code(), ErrorCode::kNoSpace);
}

TEST(BlockPoolTest, FreeRecyclesFifo) {
  BlockPool pool(4);
  for (int i = 0; i < 4; ++i) (void)*pool.alloc();
  EXPECT_TRUE(pool.free(2).ok());
  EXPECT_TRUE(pool.free(0).ok());
  EXPECT_EQ(*pool.alloc(), 2u);  // freed order, not index order
  EXPECT_EQ(*pool.alloc(), 0u);
}

TEST(BlockPoolTest, DoubleFreeDetected) {
  BlockPool pool(4);
  (void)*pool.alloc();
  EXPECT_TRUE(pool.free(0).ok());
  EXPECT_EQ(pool.free(0).code(), ErrorCode::kInternal);
  EXPECT_EQ(pool.free(99).code(), ErrorCode::kInvalidArgument);
}

TEST(BlockPoolTest, CountsTrack) {
  BlockPool pool(10);
  EXPECT_EQ(pool.free_count(), 10u);
  (void)*pool.alloc();
  (void)*pool.alloc();
  EXPECT_EQ(pool.free_count(), 8u);
  EXPECT_EQ(pool.allocated_count(), 2u);
  EXPECT_TRUE(pool.is_allocated(0));
  EXPECT_FALSE(pool.is_allocated(5));
}

TEST(BlockPoolTest, DeterministicSequences) {
  // Two pools fed the same alloc/free sequence yield identical results —
  // the property log replay relies on.
  BlockPool a(64), b(64);
  Rng rng(5);
  std::vector<uint64_t> live;
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || rng.uniform(3) != 0) {
      auto ba = a.alloc();
      auto bb = b.alloc();
      ASSERT_EQ(ba.ok(), bb.ok());
      if (ba.ok()) {
        ASSERT_EQ(*ba, *bb);
        live.push_back(*ba);
      }
    } else {
      const size_t pick = rng.uniform(live.size());
      const uint64_t block = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      ASSERT_TRUE(a.free(block).ok());
      ASSERT_TRUE(b.free(block).ok());
    }
  }
}

TEST(BlockPoolTest, SerializeRoundtrip) {
  BlockPool pool(32);
  for (int i = 0; i < 20; ++i) (void)*pool.alloc();
  ASSERT_TRUE(pool.free(3).ok());
  ASSERT_TRUE(pool.free(17).ok());
  std::vector<std::byte> buf;
  pool.serialize(buf);

  BlockPool restored;
  auto used = restored.deserialize(buf);
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(*used, buf.size());
  EXPECT_EQ(restored.free_count(), pool.free_count());
  EXPECT_EQ(restored.total(), pool.total());
  // Continued allocation matches.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*pool.alloc(), *restored.alloc());
}

TEST(BlockPoolTest, DeserializeRejectsCorruption) {
  BlockPool pool(8);
  (void)*pool.alloc();
  std::vector<std::byte> buf;
  pool.serialize(buf);
  buf[10] ^= std::byte{0xff};
  BlockPool restored;
  EXPECT_FALSE(restored.deserialize(buf).ok());
}

// ---------------------------------------------------------------------
// InodeTable
// ---------------------------------------------------------------------

TEST(InodeTableTest, AllocAssignsSequentialIds) {
  InodeTable t;
  EXPECT_EQ(t.alloc(InodeType::kDirectory).ino, kRootIno);
  EXPECT_EQ(t.alloc(InodeType::kFile).ino, kRootIno + 1);
  EXPECT_EQ(t.count(), 2u);
}

TEST(InodeTableTest, InsertWithInoAdvancesCounter) {
  InodeTable t;
  ASSERT_TRUE(t.insert_with_ino(10, InodeType::kFile).ok());
  EXPECT_EQ(t.alloc(InodeType::kFile).ino, 11u);
  EXPECT_FALSE(t.insert_with_ino(10, InodeType::kFile).ok());  // duplicate
}

TEST(InodeTableTest, SerializeRoundtripPreservesEverything) {
  InodeTable t;
  Inode& a = t.alloc(InodeType::kFile);
  a.size = 123456;
  a.seed = 0xabcdef;
  a.mode = 0600;
  a.content = ContentKind::kTagged;
  a.blocks = {7, 8, 9};
  Inode& d = t.alloc(InodeType::kDirectory);
  d.size = 64;

  std::vector<std::byte> buf;
  t.serialize(buf);
  InodeTable r;
  auto used = r.deserialize(buf);
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(r.count(), 2u);
  const Inode* ra = r.get(a.ino);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->size, 123456u);
  EXPECT_EQ(ra->seed, 0xabcdefu);
  EXPECT_EQ(ra->mode, 0600u);
  EXPECT_EQ(ra->content, ContentKind::kTagged);
  EXPECT_EQ(ra->blocks, (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_EQ(r.next_ino(), t.next_ino());
}

// ---------------------------------------------------------------------
// OpLog
// ---------------------------------------------------------------------

struct LogFixture {
  sim::Engine eng;
  hw::RamDevice dev{4_MiB};
  OpLog log{dev, 0, /*slots=*/64, /*coalesce_window=*/8};
};

LogRecord write_rec(Ino ino, uint64_t off, uint64_t len) {
  LogRecord r;
  r.type = OpType::kWrite;
  r.ino = ino;
  r.a = off;
  r.b = len;
  return r;
}

TEST(OpLogTest, RecordCodecRoundtrip) {
  LogRecord rec;
  rec.lsn = 42;
  rec.epoch = 3;
  rec.type = OpType::kCreate;
  rec.ino = 17;
  rec.parent = 1;
  rec.a = 0644;
  rec.b = 0xbeef;  // content seed
  rec.flags = kLogFlagTagged;
  rec.name = "rank0.ckpt";
  std::vector<std::byte> buf;
  OpLog::encode_record(rec, buf);
  EXPECT_EQ(buf.size(), OpLog::kRecordBytes);
  auto decoded = OpLog::decode_record(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->type, OpType::kCreate);
  EXPECT_EQ(decoded->ino, 17u);
  EXPECT_EQ(decoded->parent, 1u);
  EXPECT_EQ(decoded->a, 0644u);
  EXPECT_EQ(decoded->b, 0xbeefu);
  EXPECT_EQ(decoded->flags, kLogFlagTagged);
  EXPECT_EQ(decoded->name, "rank0.ckpt");
}

TEST(OpLogTest, DecodeRejectsBitFlip) {
  LogRecord rec = write_rec(5, 0, 100);
  rec.lsn = 1;
  std::vector<std::byte> buf;
  OpLog::encode_record(rec, buf);
  for (size_t i : {0ul, 10ul, 50ul}) {
    auto copy = buf;
    copy[i] ^= std::byte{1};
    EXPECT_FALSE(OpLog::decode_record(copy).ok()) << "flip at " << i;
  }
}

TEST(OpLogTest, AppendAndScanRoundtrip) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      LogRecord r;
      r.type = OpType::kCreate;
      r.ino = static_cast<Ino>(i + 2);
      r.parent = 1;
      r.name = "f" + std::to_string(i);
      EXPECT_TRUE((co_await fx.log.append(r)).ok());
    }
    auto scanned = co_await OpLog::scan(fx.dev, 0, 64, 0);
    EXPECT_TRUE(scanned.ok());
    EXPECT_EQ(scanned->size(), 10u);
    for (size_t i = 0; i + 1 < scanned->size(); ++i) {
      EXPECT_LT((*scanned)[i].second.lsn, (*scanned)[i + 1].second.lsn);
    }
  }(f));
}

TEST(OpLogTest, SequentialWritesCoalesce) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      bool coalesced = false;
      EXPECT_TRUE((co_await fx.log.append(
                       write_rec(5, static_cast<uint64_t>(i) * 1000, 1000),
                       true, &coalesced))
                      .ok());
      EXPECT_EQ(coalesced, i > 0);
    }
  }(f));
  EXPECT_EQ(f.log.live_records(), 1u);
  EXPECT_EQ(f.log.counters().appended, 1u);
  EXPECT_EQ(f.log.counters().coalesced, 19u);
}

TEST(OpLogTest, NonContiguousWritesDoNotCoalesce) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 1000))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 5000, 1000))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(6, 1000, 1000))).ok());
  }(f));
  EXPECT_EQ(f.log.live_records(), 3u);
}

TEST(OpLogTest, CoalesceAcrossInterleavedFileWithinWindow) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(6, 0, 100))).ok());
    bool coalesced = false;
    // File 5 continues; its record is 2 back but inside the window.
    EXPECT_TRUE(
        (co_await fx.log.append(write_rec(5, 100, 100), true, &coalesced))
            .ok());
    EXPECT_TRUE(coalesced);
  }(f));
  EXPECT_EQ(f.log.live_records(), 2u);
}

TEST(OpLogTest, WindowBoundsTheSearch) {
  sim::Engine eng;
  hw::RamDevice dev(4_MiB);
  OpLog log(dev, 0, 64, /*coalesce_window=*/2);
  eng.run_task([](OpLog& l) -> sim::Task<void> {
    EXPECT_TRUE((co_await l.append(write_rec(5, 0, 100))).ok());
    EXPECT_TRUE((co_await l.append(write_rec(6, 0, 100))).ok());
    EXPECT_TRUE((co_await l.append(write_rec(7, 0, 100))).ok());
    bool coalesced = true;
    // File 5's record is now 3 back — outside the window of 2.
    EXPECT_TRUE((co_await l.append(write_rec(5, 100, 100), true, &coalesced))
                    .ok());
    EXPECT_FALSE(coalesced);
  }(log));
}

TEST(OpLogTest, AllowCoalesceFalseForcesNewSlot) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    bool coalesced = true;
    EXPECT_TRUE(
        (co_await fx.log.append(write_rec(5, 100, 100), false, &coalesced))
            .ok());
    EXPECT_FALSE(coalesced);
  }(f));
  EXPECT_EQ(f.log.live_records(), 2u);
}

TEST(OpLogTest, EpochBoundaryStopsCoalescing) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    fx.log.begin_epoch();
    bool coalesced = true;
    EXPECT_TRUE(
        (co_await fx.log.append(write_rec(5, 100, 100), true, &coalesced))
            .ok());
    EXPECT_FALSE(coalesced);
  }(f));
  EXPECT_EQ(f.log.live_records(), 2u);
}

TEST(OpLogTest, FullRingRejectsUntilTruncated) {
  sim::Engine eng;
  hw::RamDevice dev(4_MiB);
  OpLog log(dev, 0, /*slots=*/4, /*coalesce_window=*/0);
  eng.run_task([](OpLog& l) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(
          (co_await l.append(write_rec(static_cast<Ino>(i + 2), 0, 10))).ok());
    }
    EXPECT_EQ((co_await l.append(write_rec(99, 0, 10))).code(),
              ErrorCode::kUnavailable);
    const uint32_t e = l.begin_epoch();
    l.truncate_before(e);
    EXPECT_EQ(l.free_slots(), 4u);
    EXPECT_TRUE((co_await l.append(write_rec(99, 0, 10))).ok());
  }(log));
}

TEST(OpLogTest, ScanFiltersByEpoch) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(2, 0, 10))).ok());
    const uint32_t e = fx.log.begin_epoch();
    EXPECT_TRUE((co_await fx.log.append(write_rec(3, 0, 10))).ok());
    auto all = co_await OpLog::scan(fx.dev, 0, 64, 0);
    auto recent = co_await OpLog::scan(fx.dev, 0, 64, e);
    EXPECT_EQ(all->size(), 2u);
    EXPECT_EQ(recent->size(), 1u);
    EXPECT_EQ((*recent)[0].second.ino, 3u);
  }(f));
}

// ---------------------------------------------------------------------
// Group commit (deferred coalesced rewrites)
// ---------------------------------------------------------------------

TEST(OpLogGroupCommitTest, CoalescedExtensionsDeferDeviceWrites) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE((co_await fx.log.append(
                       write_rec(5, static_cast<uint64_t>(i) * 1000, 1000)))
                      .ok());
    }
    // 1 new-slot write; the 19 extensions are deferred, not on device.
    EXPECT_EQ(fx.log.counters().bytes_written, OpLog::kRecordBytes);
    EXPECT_EQ(fx.log.dirty_slots(), 1u);
    EXPECT_EQ(fx.log.counters().group_commits, 0u);

    // The flush drains the dirty slot in one batch.
    EXPECT_TRUE((co_await fx.log.flush()).ok());
    EXPECT_EQ(fx.log.dirty_slots(), 0u);
    EXPECT_EQ(fx.log.counters().group_commits, 1u);
    EXPECT_EQ(fx.log.counters().bytes_written, 2u * OpLog::kRecordBytes);

    // The scanned record carries the full coalesced range.
    auto scanned = co_await OpLog::scan(fx.dev, 0, 64, 0);
    EXPECT_TRUE(scanned.ok());
    if (!scanned.ok() || scanned->size() != 1u) co_return;
    EXPECT_EQ((*scanned)[0].second.a, 0u);
    EXPECT_EQ((*scanned)[0].second.b, 20000u);

    // A second flush with nothing dirty is a free no-op.
    EXPECT_TRUE((co_await fx.log.flush()).ok());
    EXPECT_EQ(fx.log.counters().group_commits, 1u);
    EXPECT_EQ(fx.log.counters().bytes_written, 2u * OpLog::kRecordBytes);
  }(f));
}

TEST(OpLogGroupCommitTest, NewSlotAppendDrainsPendingDeferred) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 100, 100))).ok());
    EXPECT_EQ(fx.log.dirty_slots(), 1u);
    // A different file's append takes a new slot — the pending deferred
    // rewrite rides the same drain (adjacent slots: one submission).
    EXPECT_TRUE((co_await fx.log.append(write_rec(6, 0, 100))).ok());
    EXPECT_EQ(fx.log.dirty_slots(), 0u);
    EXPECT_EQ(fx.log.counters().group_commits, 1u);
    auto scanned = co_await OpLog::scan(fx.dev, 0, 64, 0);
    EXPECT_TRUE(scanned.ok());
    if (!scanned.ok() || scanned->size() != 2u) co_return;
    EXPECT_EQ((*scanned)[0].second.b, 200u);  // extension made durable
  }(f));
}

TEST(OpLogGroupCommitTest, ScanBeforeFlushSeesStaleRecordNotCorruption) {
  // The documented durability contract: an unflushed extension is simply
  // absent from the device (the pre-extension record is intact) — a
  // crash loses the tail extension, never log integrity.
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 100, 100))).ok());
    auto scanned = co_await OpLog::scan(fx.dev, 0, 64, 0);
    EXPECT_TRUE(scanned.ok());
    if (!scanned.ok() || scanned->size() != 1u) co_return;
    EXPECT_EQ((*scanned)[0].second.b, 100u);  // pre-extension content
  }(f));
}

TEST(OpLogGroupCommitTest, TruncateDropsDirtyOfDiscardedEpoch) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 0, 100))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(5, 100, 100))).ok());
    EXPECT_EQ(fx.log.dirty_slots(), 1u);
    const uint32_t e = fx.log.begin_epoch();
    fx.log.truncate_before(e);
    // The deferred rewrite belonged to the truncated epoch: dropped, and
    // a later flush must not touch the (now reusable) slot.
    EXPECT_EQ(fx.log.dirty_slots(), 0u);
    const uint64_t bytes_before = fx.log.counters().bytes_written;
    EXPECT_TRUE((co_await fx.log.flush()).ok());
    EXPECT_EQ(fx.log.counters().bytes_written, bytes_before);
  }(f));
}

TEST(OpLogTest, RestoreContinuesAppending) {
  LogFixture f;
  f.eng.run_task([](LogFixture& fx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fx.log.append(write_rec(2, 0, 10))).ok());
    EXPECT_TRUE((co_await fx.log.append(write_rec(3, 0, 10))).ok());
    auto scanned = co_await OpLog::scan(fx.dev, 0, 64, 0);

    OpLog fresh(fx.dev, 0, 64, 8);
    fresh.restore(*scanned, 1, 3);
    EXPECT_EQ(fresh.live_records(), 2u);
    EXPECT_TRUE((co_await fresh.append(write_rec(4, 0, 10))).ok());
    auto rescanned = co_await OpLog::scan(fx.dev, 0, 64, 0);
    EXPECT_EQ(rescanned->size(), 3u);
    EXPECT_EQ(rescanned->back().second.lsn, 3u);
  }(f));
}

// ---------------------------------------------------------------------
// Dirfile codec
// ---------------------------------------------------------------------

TEST(DirfileTest, EncodeDecodeRoundtrip) {
  std::vector<std::byte> buf;
  encode_dirent(Dirent{true, "alpha", 10}, buf);
  encode_dirent(Dirent{true, "beta", 11}, buf);
  encode_dirent(Dirent{false, "alpha", 10}, buf);
  auto decoded = decode_dirents(buf);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].name, "alpha");
  EXPECT_TRUE((*decoded)[0].add);
  EXPECT_FALSE((*decoded)[2].add);
}

TEST(DirfileTest, EncodedSizeMatchesHelper) {
  std::vector<std::byte> buf;
  const size_t n = encode_dirent(Dirent{true, "some-name", 42}, buf);
  EXPECT_EQ(n, dirent_encoded_size("some-name"));
  EXPECT_EQ(buf.size(), n);
}

TEST(DirfileTest, LiveViewFoldsTombstones) {
  std::vector<Dirent> stream{
      {true, "a", 1}, {true, "b", 2}, {false, "a", 1},
      {true, "c", 3}, {true, "a", 4},  // re-created with new ino
  };
  auto live = live_view(stream);
  ASSERT_EQ(live.size(), 3u);
  std::set<std::string> names;
  for (const auto& d : live) names.insert(d.name);
  EXPECT_EQ(names, (std::set<std::string>{"a", "b", "c"}));
  for (const auto& d : live) {
    if (d.name == "a") EXPECT_EQ(d.ino, 4u);
  }
}

TEST(DirfileTest, DecodeRejectsTruncation) {
  std::vector<std::byte> buf;
  encode_dirent(Dirent{true, "alpha", 10}, buf);
  buf.pop_back();
  EXPECT_FALSE(decode_dirents(buf).ok());
}

}  // namespace
}  // namespace nvmecr::microfs
