// End-to-end tests of the MicroFs filesystem: POSIX-surface semantics,
// durability, state checkpointing, crash recovery, and randomized
// recovery-equivalence property tests.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

std::vector<std::byte> make_bytes(size_t n, unsigned char fill) {
  return std::vector<std::byte>(n, std::byte{fill});
}

struct Fixture {
  sim::Engine eng;
  hw::RamDevice dev{64_MiB, 4096};

  std::unique_ptr<MicroFs> format(Options options = {}) {
    auto fs = eng.run_task(MicroFs::format(eng, dev, options));
    NVMECR_CHECK(fs.ok());
    return std::move(fs).value();
  }
  std::unique_ptr<MicroFs> recover(Options options = {}) {
    auto fs = eng.run_task(MicroFs::recover(eng, dev, options));
    NVMECR_CHECK(fs.ok());
    return std::move(fs).value();
  }
};

// ---------------------------------------------------------------------
// Namespace semantics
// ---------------------------------------------------------------------

TEST(MicroFsTest, FormatCreatesRoot) {
  Fixture f;
  auto fs = f.format();
  auto st = fs->stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->ino, kRootIno);
  EXPECT_EQ(st->type, InodeType::kDirectory);
  EXPECT_TRUE(fs->readdir("/")->empty());
}

TEST(MicroFsTest, MkdirAndNesting) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.mkdir("/ckpt")).ok());
    EXPECT_TRUE((co_await m.mkdir("/ckpt/step10")).ok());
    EXPECT_EQ((co_await m.mkdir("/ckpt")).code(), ErrorCode::kExists);
    EXPECT_EQ((co_await m.mkdir("/missing/sub")).code(),
              ErrorCode::kNotFound);
  }(*fs));
  auto names = fs->readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"ckpt"});
}

TEST(MicroFsTest, PathValidation) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_EQ((co_await m.mkdir("relative")).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ((co_await m.mkdir("/trailing/")).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ((co_await m.mkdir("/a//b")).code(),
              ErrorCode::kInvalidArgument);
    const std::string long_name(100, 'x');
    EXPECT_EQ((co_await m.mkdir("/" + long_name)).code(),
              ErrorCode::kNameTooLong);
  }(*fs));
}

TEST(MicroFsTest, CreatOpenCloseUnlink) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/file");
    EXPECT_TRUE(fd.ok());
    EXPECT_EQ(m.open_file_count(), 1);
    EXPECT_TRUE((co_await m.close(*fd)).ok());
    EXPECT_EQ(m.open_file_count(), 0);
    EXPECT_EQ((co_await m.close(*fd)).code(), ErrorCode::kBadFd);

    auto fd2 = co_await m.open("/file", OpenFlags::ReadOnly());
    EXPECT_TRUE(fd2.ok());
    // Unlink while open is refused.
    EXPECT_FALSE((co_await m.unlink("/file")).ok());
    EXPECT_TRUE((co_await m.close(*fd2)).ok());
    EXPECT_TRUE((co_await m.unlink("/file")).ok());
    EXPECT_EQ((co_await m.open("/file", OpenFlags::ReadOnly())).status().code(),
              ErrorCode::kNotFound);
  }(*fs));
  EXPECT_EQ(fs->stats().creates, 1u);
  EXPECT_EQ(fs->stats().unlinks, 1u);
}

TEST(MicroFsTest, UnlinkNonEmptyDirRefused) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.mkdir("/d")).ok());
    auto fd = co_await m.creat("/d/f");
    co_await m.close(*fd);
    EXPECT_EQ((co_await m.unlink("/d")).code(), ErrorCode::kNotEmpty);
    EXPECT_TRUE((co_await m.unlink("/d/f")).ok());
    EXPECT_TRUE((co_await m.unlink("/d")).ok());
  }(*fs));
}

TEST(MicroFsTest, PermissionChecks) {
  Fixture f;
  Options options;
  options.uid = 100;
  auto fs = f.format(options);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/private", 0600);
    co_await m.close(*fd);
  }(*fs));
  // A different uid mounting the same partition cannot open 0600 files.
  Options other = options;
  other.uid = 200;
  auto fs2 = f.recover(other);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_EQ((co_await m.open("/private", OpenFlags::ReadOnly()))
                  .status()
                  .code(),
              ErrorCode::kPermission);
    EXPECT_EQ((co_await m.open("/private", OpenFlags::ReadWrite()))
                  .status()
                  .code(),
              ErrorCode::kPermission);
  }(*fs2));
}

// ---------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------

TEST(MicroFsTest, ByteWriteReadRoundtrip) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/data");
    auto first = make_bytes(10000, 0x41);
    auto second = make_bytes(5000, 0x42);
    EXPECT_EQ(*(co_await m.write(*fd, first)), 10000u);
    EXPECT_EQ(*(co_await m.write(*fd, second)), 5000u);
    co_await m.close(*fd);

    auto st = m.stat("/data");
    EXPECT_EQ(st->size, 15000u);

    auto rfd = co_await m.open("/data", OpenFlags::ReadOnly());
    std::vector<std::byte> out(15000);
    EXPECT_EQ(*(co_await m.read(*rfd, out)), 15000u);
    for (int i = 0; i < 10000; ++i) EXPECT_EQ(out[i], std::byte{0x41});
    for (int i = 10000; i < 15000; ++i) EXPECT_EQ(out[i], std::byte{0x42});
    co_await m.close(*rfd);
  }(*fs));
}

TEST(MicroFsTest, WritesSpanHugeblocks) {
  Fixture f;
  Options options;
  options.hugeblock_size = 32_KiB;
  auto fs = f.format(options);
  uint64_t used_before_write = 0;
  f.eng.run_task([](MicroFs& m, uint64_t& before) -> sim::Task<void> {
    auto fd = co_await m.creat("/big");
    before = m.data_region_blocks() - m.free_blocks();
    auto data = make_bytes(100000, 0x7e);  // > 3 hugeblocks
    EXPECT_TRUE((co_await m.write(*fd, data)).ok());
    co_await m.close(*fd);
    auto rfd = co_await m.open("/big", OpenFlags::ReadOnly());
    std::vector<std::byte> out(100000);
    EXPECT_EQ(*(co_await m.read(*rfd, out)), 100000u);
    EXPECT_EQ(out, data);
    co_await m.close(*rfd);
  }(*fs, used_before_write));
  // 100000 bytes / 32 KiB -> 4 hugeblocks beyond the root dirfile.
  EXPECT_EQ(fs->data_region_blocks() - fs->free_blocks(),
            used_before_write + 4);
}

TEST(MicroFsTest, TaggedWriteVerifies) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/ckpt0");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
    EXPECT_TRUE((co_await m.verify_tagged("/ckpt0")).ok());
    EXPECT_EQ(m.stat("/ckpt0")->size, 2_MiB);
  }(*fs));
}

TEST(MicroFsTest, MixedContentKindsRejected) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/mix");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    auto data = make_bytes(100, 1);
    EXPECT_EQ((co_await m.write(*fd, data)).status().code(),
              ErrorCode::kInvalidArgument);
    std::vector<std::byte> out(100);
    EXPECT_EQ((co_await m.read(*fd, out)).status().code(),
              ErrorCode::kInvalidArgument);
    co_await m.close(*fd);
  }(*fs));
}

TEST(MicroFsTest, TruncateOnCreatReleasesBlocks) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/t");
    const uint64_t used_empty = m.data_region_blocks() - m.free_blocks();
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
    const uint64_t used = m.data_region_blocks() - m.free_blocks();
    EXPECT_GT(used, used_empty);
    auto fd2 = co_await m.creat("/t");  // O_TRUNC
    co_await m.close(*fd2);
    // Back to only the root dirfile's block(s).
    EXPECT_EQ(m.data_region_blocks() - m.free_blocks(), used_empty);
    EXPECT_EQ(m.stat("/t")->size, 0u);
  }(*fs));
}

TEST(MicroFsTest, UnalignedTaggedStreamPaysPaddingAmplification) {
  Fixture f;
  Options options;
  options.hugeblock_size = 256_KiB;
  auto fs = f.format(options);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/c");
    auto header = make_bytes(0, 0);
    // A 256-byte header followed by 1 MiB chunks misaligns every write.
    EXPECT_TRUE((co_await m.write_tagged(*fd, 256)).ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    }
    co_await m.close(*fd);
  }(*fs));
  // Device bytes exceed payload bytes: each misaligned 1 MiB write spans
  // 5 hugeblocks (1.25 MiB).
  EXPECT_GT(fs->stats().data_bytes_written,
            fs->stats().payload_bytes_written * 5 / 4 - 256_KiB);
}

TEST(MicroFsTest, DirfileOnDeviceMatchesNamespace) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.mkdir("/dir")).ok());
    for (int i = 0; i < 5; ++i) {
      auto fd = co_await m.creat("/dir/f" + std::to_string(i));
      co_await m.close(*fd);
    }
    EXPECT_TRUE((co_await m.unlink("/dir/f2")).ok());

    auto stream = co_await m.read_dirfile("/dir");
    EXPECT_TRUE(stream.ok());
    auto live = live_view(*stream);
    std::set<std::string> names;
    for (const auto& d : live) names.insert(d.name);
    EXPECT_EQ(names, (std::set<std::string>{"f0", "f1", "f3", "f4"}));
  }(*fs));
}

// ---------------------------------------------------------------------
// State checkpointing + recovery
// ---------------------------------------------------------------------

TEST(MicroFsTest, ExplicitCheckpointTruncatesLog) {
  Fixture f;
  auto fs = f.format();
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      auto fd = co_await m.creat("/f" + std::to_string(i));
      co_await m.close(*fd);
    }
    const uint32_t before = m.log_free_slots();
    EXPECT_TRUE((co_await m.checkpoint_state()).ok());
    EXPECT_GT(m.log_free_slots(), before);
    EXPECT_EQ(m.log_free_slots(), m.log_capacity());
  }(*fs));
  EXPECT_GE(fs->stats().state_checkpoints, 2u);  // format + explicit
}

TEST(MicroFsTest, AutoCheckpointTriggersWhenLogFills) {
  Fixture f;
  Options options;
  options.log_slots = 32;
  options.checkpoint_free_threshold = 0.5;
  options.coalesce_window = 0;  // every op takes a slot
  auto fs = f.format(options);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      auto fd = co_await m.creat("/f" + std::to_string(i));
      co_await m.close(*fd);  // close triggers the background thread check
    }
  }(*fs));
  f.eng.run();
  EXPECT_GE(fs->stats().state_checkpoints, 2u);
  EXPECT_GT(fs->log_free_slots(), 0u);
}

TEST(MicroFsTest, LogFullForcesInlineCheckpoint) {
  Fixture f;
  Options options;
  options.log_slots = 8;
  options.auto_checkpoint = false;
  options.coalesce_window = 0;
  auto fs = f.format(options);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    // 20 creates with an 8-slot ring: append must transparently force
    // checkpoints instead of failing.
    for (int i = 0; i < 20; ++i) {
      auto fd = co_await m.creat("/f" + std::to_string(i));
      EXPECT_TRUE(fd.ok());
      co_await m.close(*fd);
    }
  }(*fs));
  EXPECT_GT(fs->log_counters().forced_full, 0u);
  EXPECT_GE(fs->stats().state_checkpoints, 2u);
}

TEST(MicroFsTest, RecoverEmptyFilesystem) {
  Fixture f;
  { auto fs = f.format(); }
  auto fs = f.recover();
  EXPECT_TRUE(fs->stat("/").ok());
  EXPECT_TRUE(fs->readdir("/")->empty());
}

TEST(MicroFsTest, RecoverRestoresNamespaceAndBytes) {
  Fixture f;
  {
    auto fs = f.format();
    f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
      EXPECT_TRUE((co_await m.mkdir("/ckpt")).ok());
      auto fd = co_await m.creat("/ckpt/meta");
      auto data = make_bytes(5000, 0x33);
      EXPECT_TRUE((co_await m.write(*fd, data)).ok());
      co_await m.close(*fd);
    }(*fs));
    // No explicit checkpoint: recovery must replay the log.
  }
  auto fs = f.recover();
  EXPECT_GT(fs->stats().replayed_records, 0u);
  auto st = fs->stat("/ckpt/meta");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5000u);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.open("/ckpt/meta", OpenFlags::ReadOnly());
    std::vector<std::byte> out(5000);
    EXPECT_EQ(*(co_await m.read(*fd, out)), 5000u);
    for (auto b : out) EXPECT_EQ(b, std::byte{0x33});
    co_await m.close(*fd);
  }(*fs));
}

TEST(MicroFsTest, RecoverVerifiesTaggedCheckpointContent) {
  Fixture f;
  {
    auto fs = f.format();
    f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
      auto fd = co_await m.creat("/rank0.ckpt");
      for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
      }
      co_await m.close(*fd);
    }(*fs));
  }
  auto fs = f.recover();
  EXPECT_EQ(fs->stat("/rank0.ckpt")->size, 8_MiB);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    // The recovered block mapping must point at the same device blocks
    // the original wrote — the tagged verify proves it byte-for-block.
    EXPECT_TRUE((co_await m.verify_tagged("/rank0.ckpt")).ok());
  }(*fs));
}

TEST(MicroFsTest, RecoverAfterCheckpointPlusTail) {
  Fixture f;
  {
    auto fs = f.format();
    f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
      auto fd = co_await m.creat("/a");
      EXPECT_TRUE((co_await m.write_tagged(*fd, 2_MiB)).ok());
      co_await m.close(*fd);
      EXPECT_TRUE((co_await m.checkpoint_state()).ok());
      // Post-checkpoint tail that only exists in the log.
      auto fd2 = co_await m.creat("/b");
      EXPECT_TRUE((co_await m.write_tagged(*fd2, 1_MiB)).ok());
      co_await m.close(*fd2);
    }(*fs));
  }
  auto fs = f.recover();
  EXPECT_EQ(fs->stat("/a")->size, 2_MiB);
  EXPECT_EQ(fs->stat("/b")->size, 1_MiB);
  f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged("/a")).ok());
    EXPECT_TRUE((co_await m.verify_tagged("/b")).ok());
  }(*fs));
}

TEST(MicroFsTest, CoalescingShrinksReplayLength) {
  auto run = [](uint32_t window) {
    Fixture f;
    Options options;
    options.coalesce_window = window;
    {
      auto fs = f.format(options);
      f.eng.run_task([](MicroFs& m) -> sim::Task<void> {
        auto fd = co_await m.creat("/ckpt");
        for (int i = 0; i < 50; ++i) {
          EXPECT_TRUE((co_await m.write_tagged(*fd, 128_KiB)).ok());
        }
        co_await m.close(*fd);
      }(*fs));
    }
    auto fs = f.recover(options);
    return fs->stats().replayed_records;
  };
  const uint64_t with = run(64);
  const uint64_t without = run(0);
  EXPECT_EQ(with, 2u);      // create + one coalesced write
  EXPECT_EQ(without, 51u);  // create + 50 writes
}

TEST(MicroFsTest, MountOfGarbageDeviceFails) {
  sim::Engine eng;
  hw::RamDevice dev(8_MiB, 4096);
  auto fs = eng.run_task(MicroFs::recover(eng, dev));
  EXPECT_FALSE(fs.ok());
}

// ---------------------------------------------------------------------
// Randomized recovery-equivalence property test
// ---------------------------------------------------------------------

struct RefFile {
  uint64_t size = 0;
  bool tagged = false;
};

// Applies a random op sequence, then recovers from the device and checks
// the namespace, sizes, and tagged content all match a reference model.
void recovery_fuzz(uint64_t seed, Options options, int ops) {
  Fixture f;
  std::map<std::string, RefFile> ref;
  {
    auto fs = f.format(options);
    Rng rng(seed);
    f.eng.run_task([](MicroFs& m, std::map<std::string, RefFile>& model,
                      Rng& rand, int nops) -> sim::Task<void> {
      for (int i = 0; i < nops; ++i) {
        const uint64_t action = rand.uniform(10);
        const std::string path = "/f" + std::to_string(rand.uniform(12));
        if (action < 4) {  // create or truncate
          auto fd = co_await m.creat(path);
          EXPECT_TRUE(fd.ok());
          co_await m.close(*fd);
          model[path] = RefFile{};
        } else if (action < 8) {  // append
          auto it = model.find(path);
          if (it == model.end()) continue;
          auto fd = co_await m.open(path, OpenFlags::ReadWrite());
          EXPECT_TRUE(fd.ok());
          const uint64_t len = (1 + rand.uniform(64)) * 4_KiB;
          if (it->second.size == 0 || it->second.tagged) {
            EXPECT_TRUE((co_await m.write_tagged(*fd, len)).ok());
            it->second.tagged = true;
          } else {
            auto data = std::vector<std::byte>(len, std::byte{0x5c});
            EXPECT_TRUE((co_await m.write(*fd, data)).ok());
          }
          it->second.size += len;
          co_await m.close(*fd);
        } else if (action < 9) {  // unlink
          auto it = model.find(path);
          if (it == model.end()) continue;
          EXPECT_TRUE((co_await m.unlink(path)).ok());
          model.erase(it);
        } else {  // occasional explicit checkpoint
          EXPECT_TRUE((co_await m.checkpoint_state()).ok());
        }
      }
    }(*fs, ref, rng, ops));
  }

  auto fs = f.recover(options);
  // Namespace equivalence.
  auto names = fs->readdir("/");
  ASSERT_TRUE(names.ok());
  std::set<std::string> got(names->begin(), names->end());
  std::set<std::string> want;
  for (const auto& [path, file] : ref) want.insert(path.substr(1));
  EXPECT_EQ(got, want);
  // Size + content equivalence.
  f.eng.run_task([](MicroFs& m, std::map<std::string, RefFile>& model)
                     -> sim::Task<void> {
    for (const auto& [path, file] : model) {
      auto st = m.stat(path);
      EXPECT_TRUE(st.ok()) << path;
      if (!st.ok()) continue;
      EXPECT_EQ(st->size, file.size) << path;
      if (file.tagged && file.size > 0) {
        EXPECT_TRUE((co_await m.verify_tagged(path)).ok()) << path;
      }
    }
    co_return;
  }(*fs, ref));
}

TEST(MicroFsRecoveryPropertyTest, WithCoalescing) {
  Options options;
  recovery_fuzz(101, options, 160);
}

TEST(MicroFsRecoveryPropertyTest, WithoutCoalescing) {
  Options options;
  options.coalesce_window = 0;
  recovery_fuzz(202, options, 160);
}

TEST(MicroFsRecoveryPropertyTest, TinyLogForcesCheckpoints) {
  Options options;
  options.log_slots = 16;
  options.checkpoint_free_threshold = 0.4;
  recovery_fuzz(303, options, 160);
}

TEST(MicroFsRecoveryPropertyTest, SmallHugeblocks) {
  Options options;
  options.hugeblock_size = 8_KiB;
  recovery_fuzz(404, options, 120);
}

TEST(MicroFsRecoveryPropertyTest, BatchedSubmission) {
  Options options;
  options.io_batch_hugeblocks = 16;
  recovery_fuzz(505, options, 120);
}

}  // namespace
}  // namespace nvmecr::microfs
