// Unit tests for the discrete-event engine, coroutine tasks, events,
// semaphores, barriers, and bandwidth resources.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "simcore/engine.h"
#include "simcore/event.h"
#include "simcore/resource.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simcore/trace.h"

namespace nvmecr::sim {
namespace {

using namespace nvmecr::literals;

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
}

TEST(EngineTest, DelayAdvancesSimTime) {
  Engine eng;
  SimTime observed = -1;
  eng.run_task([](Engine& e, SimTime& out) -> Task<void> {
    co_await e.delay(10_us);
    out = e.now();
  }(eng, observed));
  EXPECT_EQ(observed, 10_us);
  EXPECT_EQ(eng.now(), 10_us);
}

TEST(EngineTest, NegativeDelayClampsToZero) {
  Engine eng;
  eng.run_task([](Engine& e) -> Task<void> {
    co_await e.delay(-5);
    EXPECT_EQ(e.now(), 0);
  }(eng));
}

TEST(EngineTest, NestedTasksComposeTime) {
  Engine eng;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(5_us);
    co_return 21;
  };
  auto outer = [inner](Engine& e) -> Task<int> {
    const int a = co_await inner(e);
    const int b = co_await inner(e);
    co_return a + b;
  };
  const int result = eng.run_task(outer(eng));
  EXPECT_EQ(result, 42);
  EXPECT_EQ(eng.now(), 10_us);
}

TEST(EngineTest, SameTimeEventsRunInSpawnOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](std::vector<int>& o, int id) -> Task<void> {
      o.push_back(id);
      co_return;
    }(order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(eng.live_roots(), 0);
}

TEST(EngineTest, InterleavesByTimestamp) {
  Engine eng;
  std::vector<std::pair<int, SimTime>> trace;
  auto proc = [](Engine& e, std::vector<std::pair<int, SimTime>>& t, int id,
                 SimDuration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(step);
      t.emplace_back(id, e.now());
    }
  };
  eng.spawn(proc(eng, trace, 0, 10_us));
  eng.spawn(proc(eng, trace, 1, 15_us));
  eng.run();
  // Expected wake times: p0 at 10,20,30; p1 at 15,30,45.
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], (std::pair<int, SimTime>{0, 10_us}));
  EXPECT_EQ(trace[1], (std::pair<int, SimTime>{1, 15_us}));
  EXPECT_EQ(trace[2], (std::pair<int, SimTime>{0, 20_us}));
  // Tie at 30us: p0 scheduled its wake (at 20us) before p1 (at 15us)?
  // p1 scheduled its 30us wake at t=15, p0 its 30us wake at t=20, so p1
  // resumes first by insertion order.
  EXPECT_EQ(trace[3], (std::pair<int, SimTime>{1, 30_us}));
  EXPECT_EQ(trace[4], (std::pair<int, SimTime>{0, 30_us}));
  EXPECT_EQ(trace[5], (std::pair<int, SimTime>{1, 45_us}));
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine eng;
  int ticks = 0;
  eng.spawn([](Engine& e, int& t) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await e.delay(1_ms);
      ++t;
    }
  }(eng, ticks));
  eng.run_until(10_ms);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(eng.live_roots(), 1);
  eng.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(eng.live_roots(), 0);
}

TEST(EngineTest, RunTaskReturnsValue) {
  Engine eng;
  const uint64_t v = eng.run_task([](Engine& e) -> Task<uint64_t> {
    co_await e.delay(1_us);
    co_return 0xdeadbeefull;
  }(eng));
  EXPECT_EQ(v, 0xdeadbeefull);
}

TEST(EngineTest, DeadlockedRootIsReportedAndReclaimed) {
  Engine eng;
  Event never(eng);
  eng.spawn([](Event& ev) -> Task<void> { co_await ev.wait(); }(never));
  eng.run();
  EXPECT_EQ(eng.live_roots(), 1);
  // Engine destructor reclaims the frame; ASAN would flag a leak if not.
}

TEST(EventTest, WaitersResumeOnSet) {
  Engine eng;
  Event ev(eng);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Event& e, int& w) -> Task<void> {
      co_await e.wait();
      ++w;
    }(ev, woken));
  }
  eng.spawn([](Engine& e, Event& ev2) -> Task<void> {
    co_await e.delay(5_us);
    ev2.set();
  }(eng, ev));
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(eng.now(), 5_us);
}

TEST(EventTest, WaitAfterSetIsImmediate) {
  Engine eng;
  Event ev(eng);
  ev.set();
  eng.run_task([](Engine& e, Event& ev2) -> Task<void> {
    co_await ev2.wait();
    EXPECT_EQ(e.now(), 0);
  }(eng, ev));
}

TEST(JoinCounterTest, WaitsForAllChildren) {
  Engine eng;
  JoinCounter join(eng);
  int done = 0;
  for (int i = 1; i <= 4; ++i) {
    join.spawn([](Engine& e, int& d, int i2) -> Task<void> {
      co_await e.delay(i2 * 1_us);
      ++d;
    }(eng, done, i));
  }
  eng.run_task([](JoinCounter& j, int& d) -> Task<void> {
    co_await j.wait();
    EXPECT_EQ(d, 4);
  }(join, done));
  EXPECT_EQ(eng.now(), 4_us);
}

TEST(JoinCounterTest, WaitWithNoChildrenReturnsImmediately) {
  Engine eng;
  JoinCounter join(eng);
  eng.run_task([](JoinCounter& j) -> Task<void> { co_await j.wait(); }(join));
  EXPECT_EQ(eng.now(), 0);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  int concurrent = 0, peak = 0;
  for (int i = 0; i < 6; ++i) {
    eng.spawn([](Engine& e, Semaphore& s, int& c, int& p) -> Task<void> {
      co_await s.acquire();
      ++c;
      p = c > p ? c : p;
      co_await e.delay(10_us);
      --c;
      s.release();
    }(eng, sem, concurrent, peak));
  }
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(eng.now(), 30_us);  // 6 jobs / 2 wide * 10us
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, FifoGrantOrder) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Semaphore& s, std::vector<int>& o,
                 int id) -> Task<void> {
      co_await s.acquire();
      o.push_back(id);
      co_await e.delay(1_us);
      s.release();
    }(eng, sem, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FifoMutexTest, MutualExclusion) {
  Engine eng;
  FifoMutex mu(eng);
  bool inside = false;
  for (int i = 0; i < 8; ++i) {
    eng.spawn([](Engine& e, FifoMutex& m, bool& in) -> Task<void> {
      co_await m.lock();
      EXPECT_FALSE(in);
      in = true;
      co_await e.delay(2_us);
      in = false;
      m.unlock();
    }(eng, mu, inside));
  }
  eng.run();
  EXPECT_EQ(eng.now(), 16_us);
}

TEST(BarrierTest, ReleasesAllTogether) {
  Engine eng;
  Barrier barrier(eng, 4);
  std::vector<SimTime> release_times;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Barrier& b, std::vector<SimTime>& out,
                 int id) -> Task<void> {
      co_await e.delay((id + 1) * 10_us);
      co_await b.arrive_and_wait();
      out.push_back(e.now());
    }(eng, barrier, release_times, i));
  }
  eng.run();
  ASSERT_EQ(release_times.size(), 4u);
  for (SimTime t : release_times) EXPECT_EQ(t, 40_us);  // slowest arrival
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  Engine eng;
  Barrier barrier(eng, 2);
  std::vector<SimTime> times;
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](Engine& e, Barrier& b, std::vector<SimTime>& out,
                 int id) -> Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await e.delay((id + 1) * 5_us);
        co_await b.arrive_and_wait();
        if (id == 0) out.push_back(e.now());
      }
    }(eng, barrier, times, i));
  }
  eng.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10_us, 20_us, 30_us}));
}

TEST(BandwidthResourceTest, SingleTransferTime) {
  Engine eng;
  BandwidthResource link(eng, 1_GBps);
  eng.run_task([](Engine& e, BandwidthResource& l) -> Task<void> {
    co_await l.transfer(1000000);  // 1 MB at 1 GB/s = 1 ms
    EXPECT_EQ(e.now(), 1_ms);
  }(eng, link));
}

TEST(BandwidthResourceTest, SerializesConcurrentTransfers) {
  Engine eng;
  BandwidthResource link(eng, 1_GBps);
  std::vector<SimTime> finishes;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, BandwidthResource& l,
                 std::vector<SimTime>& out) -> Task<void> {
      co_await l.transfer(1000000);
      out.push_back(e.now());
    }(eng, link, finishes));
  }
  eng.run();
  EXPECT_EQ(finishes, (std::vector<SimTime>{1_ms, 2_ms, 3_ms}));
}

TEST(BandwidthResourceTest, FairChunkingInterleaves) {
  Engine eng;
  BandwidthResource link(eng, 1_GBps);
  std::vector<SimTime> finishes(2);
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](Engine& e, BandwidthResource& l, std::vector<SimTime>& out,
                 int id) -> Task<void> {
      co_await l.transfer_fair(1000000, 100000);  // 1 MB in 100 KB chunks
      out[id] = e.now();
    }(eng, link, finishes, i));
  }
  eng.run();
  // Both flows share the pipe; both finish near 2 ms (perfect sharing),
  // not one at 1 ms and the other at 2 ms.
  EXPECT_GT(finishes[0], 1800_us);
  EXPECT_LE(finishes[0], 2_ms);
  EXPECT_EQ(finishes[1], 2_ms);
}

TEST(BandwidthResourceTest, ZeroRateIsInstant) {
  Engine eng;
  BandwidthResource link(eng, 0);
  eng.run_task([](Engine& e, BandwidthResource& l) -> Task<void> {
    co_await l.transfer(1_GiB);
    EXPECT_EQ(e.now(), 0);
  }(eng, link));
}

TEST(BandwidthResourceTest, ReserveAfterCouplesPipelines) {
  Engine eng;
  BandwidthResource stage1(eng, 2_GBps), stage2(eng, 1_GBps);
  eng.run_task(
      [](Engine& e, BandwidthResource& a, BandwidthResource& b) -> Task<void> {
        const SimTime t1 = a.reserve(1000000);        // done at 0.5 ms
        const SimTime t2 = b.reserve_after(t1, 1000000);  // 0.5 + 1.0 ms
        co_await e.sleep_until(t2);
        EXPECT_EQ(e.now(), 1500_us);
      }(eng, stage1, stage2));
}

TEST(BandwidthResourceTest, BacklogReflectsQueue) {
  Engine eng;
  BandwidthResource link(eng, 1_GBps);
  eng.run_task([](Engine& e, BandwidthResource& l) -> Task<void> {
    EXPECT_EQ(l.backlog(), 0);
    l.reserve(2000000);  // 2 ms of work
    EXPECT_EQ(l.backlog(), 2_ms);
    co_await e.delay(500_us);
    EXPECT_EQ(l.backlog(), 1500_us);
  }(eng, link));
}

}  // namespace
}  // namespace nvmecr::sim

namespace nvmecr::sim {
namespace {

// Determinism: two engines fed the same program produce bit-identical
// schedules — the property that makes every figure regenerate exactly.
TEST(DeterminismTest, IdenticalProgramsProduceIdenticalTimelines) {
  auto run = [] {
    Engine eng;
    BandwidthResource link(eng, 1_GBps);
    Semaphore sem(eng, 3);
    std::vector<SimTime> finishes;
    for (int i = 0; i < 16; ++i) {
      eng.spawn([](Engine& e, BandwidthResource& l, Semaphore& s,
                   std::vector<SimTime>& out, int id) -> Task<void> {
        co_await s.acquire();
        co_await e.delay((id % 5) * 7_us);
        co_await l.transfer_fair(100000 + id * 1000, 32768);
        s.release();
        out.push_back(e.now());
      }(eng, link, sem, finishes, i));
    }
    eng.run();
    return finishes;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nvmecr::sim

namespace nvmecr::sim {
namespace {

TEST(TraceTest, SpansAndInstantsSerialize) {
  Engine eng;
  TraceCollector trace;
  eng.run_task([](Engine& e, TraceCollector& t) -> Task<void> {
    {
      TraceSpan span(&t, "rank0", "checkpoint", e);
      co_await e.delay(10_us);
      t.add_instant("rank0", "fsync", e.now());
      co_await e.delay(5_us);
    }
    {
      TraceSpan span(&t, "device", "drain", e);
      co_await e.delay(3_us);
    }
  }(eng, trace));
  EXPECT_EQ(trace.size(), 3u);
  const std::string json = trace.to_json();
  // Spans carry durations, instants don't; track names become thread
  // metadata.
  EXPECT_NE(json.find("\"name\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15.000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"rank0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"device\"}"), std::string::npos);
}

TEST(TraceTest, HostileNamesProduceValidJson) {
  TraceCollector trace;
  // Quotes, backslashes, and control characters in track/name/arg keys
  // must be escaped, not emitted raw.
  trace.add_span("rank\"0\"", "write \"a\\b\"\n", 0, 1000,
                 {{"by\ttes", 42.0}});
  trace.add_instant("tab\there", "newline\nname", 500);
  trace.add_counter("c\\track", "dep\"th", 0, 3.0);
  const std::string json = trace.to_json();
  // No raw quote-adjacent injection: every '"' inside a value is escaped.
  EXPECT_EQ(json.find("rank\"0\""), std::string::npos);
  EXPECT_NE(json.find("rank\\\"0\\\""), std::string::npos);
  EXPECT_NE(json.find("write \\\"a\\\\b\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("by\\ttes"), std::string::npos);
  EXPECT_NE(json.find("newline\\nname"), std::string::npos);
  EXPECT_NE(json.find("c\\\\track"), std::string::npos);
  EXPECT_NE(json.find("dep\\\"th"), std::string::npos);
  // No raw control characters survive inside any string literal (the
  // whitespace between events is structural and fine).
  bool in_string = false;
  size_t quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
      continue;
    }
    if (in_string) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
  // Balanced quoting: every string literal was closed.
  EXPECT_FALSE(in_string);
  EXPECT_EQ(quotes % 2, 0u);
}

TEST(TraceTest, JsonEscapeEscapesControlAndSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\n\r\t\b\f"), "\\n\\r\\t\\b\\f");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceTest, NullCollectorIsNoop) {
  Engine eng;
  eng.run_task([](Engine& e) -> Task<void> {
    TraceSpan span(nullptr, "x", "y", e);
    co_await e.delay(1_us);
  }(eng));
  EXPECT_EQ(eng.now(), 1_us);
}

// ---------------------------------------------------------------------
// Two-tier scheduler (now ring + heap)
// ---------------------------------------------------------------------

namespace {

/// Runs a schedule that interleaves same-time yields with future delays
/// across several tasks and records every side effect in order.
std::vector<int> run_interleaved(bool ring_enabled) {
  Engine eng;
  eng.set_now_ring_enabled(ring_enabled);
  std::vector<int> order;
  for (int id = 0; id < 4; ++id) {
    eng.spawn([](Engine& e, std::vector<int>& out, int id) -> Task<void> {
      for (int i = 0; i < 3; ++i) {
        out.push_back(id * 100 + i * 10);
        co_await e.yield();
        out.push_back(id * 100 + i * 10 + 1);
        // Different per-task delays force heap/ring interleaving at the
        // same timestamps later on.
        co_await e.delay((id % 2 == 0) ? 5 : 10);
      }
      out.push_back(id * 100 + 99);
    }(eng, order, id));
  }
  eng.run();
  return order;
}

}  // namespace

TEST(TwoTierSchedulerTest, SameTimeEventsRunInInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int id = 0; id < 8; ++id) {
    eng.spawn([](Engine& e, std::vector<int>& out, int id) -> Task<void> {
      out.push_back(id);
      co_await e.yield();
      out.push_back(10 + id);
      co_await e.yield();
      out.push_back(20 + id);
    }(eng, order, id));
  }
  eng.run();
  // Strict FIFO among same-time events: all first-round pushes, then all
  // second-round, then all third-round, each in spawn order.
  std::vector<int> expect;
  for (int round = 0; round < 3; ++round) {
    for (int id = 0; id < 8; ++id) expect.push_back(round * 10 + id);
  }
  EXPECT_EQ(order, expect);
  EXPECT_EQ(eng.now(), 0);
}

TEST(TwoTierSchedulerTest, MaturedHeapEntryRunsBeforeNewerRingEntry) {
  // A sleeper scheduled for t=10 (heap) was inserted before anything that
  // will be ring-scheduled at t=10, so it must run first even though the
  // ring is checked first in the dispatch loop.
  Engine eng;
  std::vector<std::string> order;
  eng.spawn([](Engine& e, std::vector<std::string>& out) -> Task<void> {
    co_await e.delay(10);
    out.push_back("sleeper");  // heap entry, seq small
    co_await e.yield();
    out.push_back("sleeper-after-yield");
  }(eng, order));
  eng.spawn([](Engine& e, std::vector<std::string>& out) -> Task<void> {
    co_await e.delay(10);
    out.push_back("second-sleeper");
    co_return;
  }(eng, order));
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "sleeper");
  // The yield (ring, newer seq) runs after the second matured heap entry
  // (older seq) — exactly the (time, seq) total order.
  EXPECT_EQ(order[1], "second-sleeper");
  EXPECT_EQ(order[2], "sleeper-after-yield");
}

TEST(TwoTierSchedulerTest, RingDisabledProducesIdenticalSchedule) {
  EXPECT_EQ(run_interleaved(true), run_interleaved(false));
}

TEST(TwoTierSchedulerTest, DispatchCountersTrackRingAndHeap) {
  Engine eng;
  eng.run_task([](Engine& e) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await e.yield();
    co_await e.delay(5);
  }(eng));
  // Every dispatch is counted; the 10 yields (plus spawn wakeups) hit the
  // ring, the delay goes through the heap.
  EXPECT_GT(eng.events_dispatched(), 10u);
  EXPECT_GE(eng.now_ring_hits(), 10u);
  EXPECT_LT(eng.now_ring_hits(), eng.events_dispatched());

  Engine heap_only;
  heap_only.set_now_ring_enabled(false);
  heap_only.run_task([](Engine& e) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await e.yield();
  }(heap_only));
  EXPECT_EQ(heap_only.now_ring_hits(), 0u);
  EXPECT_GT(heap_only.events_dispatched(), 10u);
}

TEST(TwoTierSchedulerTest, RingGrowsPastInitialCapacity) {
  // More than 256 (the initial ring capacity) simultaneous same-time
  // wakeups force ring growth mid-run; FIFO order must survive.
  Engine eng;
  std::vector<int> order;
  for (int id = 0; id < 1000; ++id) {
    eng.spawn([](Engine& e, std::vector<int>& out, int id) -> Task<void> {
      co_await e.yield();
      out.push_back(id);
    }(eng, order, id));
  }
  eng.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int id = 0; id < 1000; ++id) EXPECT_EQ(order[id], id);
}

TEST(TwoTierSchedulerTest, DispatchProbeSeesMonotonicTimeSeqOrder) {
  Engine eng;
  std::vector<std::pair<SimTime, uint64_t>> trace;
  eng.set_dispatch_probe([&trace](SimTime t, uint64_t seq) {
    trace.emplace_back(t, seq);
  });
  for (int id = 0; id < 6; ++id) {
    eng.spawn([](Engine& e, int id) -> Task<void> {
      for (int i = 0; i < 4; ++i) {
        if ((i + id) % 2 == 0) {
          co_await e.yield();
        } else {
          co_await e.delay(3);
        }
      }
    }(eng, id));
  }
  eng.run();
  ASSERT_FALSE(trace.empty());
  // The dispatched stream must be sorted by (time, seq) — the scheduler's
  // core determinism invariant.
  for (size_t i = 1; i < trace.size(); ++i) {
    const bool ordered =
        trace[i - 1].first < trace[i].first ||
        (trace[i - 1].first == trace[i].first &&
         trace[i - 1].second < trace[i].second);
    ASSERT_TRUE(ordered) << "out of order at " << i;
  }
}

namespace {

/// Timer-heavy program spanning many calendar buckets (4096 ns each) and
/// far past the 2048-bucket window, so it exercises bucket maturation,
/// in-bucket sorting, late arrivals behind the drain cursor, and window
/// rotation. Returns the observed completion order.
std::vector<int> run_calendar_mix(bool calendar_enabled) {
  Engine eng;
  eng.set_calendar_enabled(calendar_enabled);
  std::vector<int> order;
  for (int id = 0; id < 40; ++id) {
    eng.spawn([](Engine& e, std::vector<int>& out, int id) -> Task<void> {
      // Deterministic per-id delays: some sub-bucket (same 4096 ns
      // bucket), some a few buckets out, some far beyond the ~8.4 ms
      // window so the heap tier and rotation both engage.
      const SimDuration near = 100 + 37 * id;           // sub-bucket
      const SimDuration mid = 5000 * (1 + id % 7);      // a few buckets
      const SimDuration far = 20'000'000 + 9999 * id;   // past the window
      co_await e.delay(near);
      co_await e.delay(mid);
      // Same-bucket re-arm: maturing this bucket schedules a new timer
      // landing at/behind the drain cursor (cal_insert_sorted path).
      co_await e.delay(1);
      co_await e.delay(far);
      out.push_back(id);
    }(eng, order, id));
  }
  eng.run();
  return order;
}

}  // namespace

TEST(CalendarSchedulerTest, CalendarOnAndOffProduceIdenticalOrder) {
  const std::vector<int> on = run_calendar_mix(true);
  const std::vector<int> off = run_calendar_mix(false);
  ASSERT_EQ(on.size(), 40u);
  EXPECT_EQ(on, off);
}

TEST(CalendarSchedulerTest, CalendarAbsorbsNearTimers) {
  Engine eng;
  eng.run_task([](Engine& e) -> Task<void> {
    // All within one window once the calendar engages.
    for (int i = 0; i < 64; ++i) co_await e.delay(1000 + i * 333);
  }(eng));
  EXPECT_GT(eng.calendar_hits(), 0u);
  EXPECT_LE(eng.calendar_hits(), eng.events_dispatched());
}

TEST(CalendarSchedulerTest, DisabledCalendarCountsNoHits) {
  Engine eng;
  eng.set_calendar_enabled(false);
  eng.run_task([](Engine& e) -> Task<void> {
    for (int i = 0; i < 64; ++i) co_await e.delay(1000 + i * 333);
  }(eng));
  EXPECT_EQ(eng.calendar_hits(), 0u);
}

TEST(CalendarSchedulerTest, ProbeOrderHoldsAcrossWindowRotation) {
  Engine eng;
  std::vector<std::pair<SimTime, uint64_t>> trace;
  eng.set_dispatch_probe([&trace](SimTime t, uint64_t seq) {
    trace.emplace_back(t, seq);
  });
  for (int id = 0; id < 12; ++id) {
    eng.spawn([](Engine& e, int id) -> Task<void> {
      // Alternate short hops and window-sized jumps: every iteration
      // lands in a different window, forcing repeated rotation.
      for (int i = 0; i < 6; ++i) {
        co_await e.delay(200 + 17 * id);
        co_await e.delay(9'000'000 + 1234 * id);
      }
    }(eng, id));
  }
  eng.run();
  ASSERT_FALSE(trace.empty());
  for (size_t i = 1; i < trace.size(); ++i) {
    const bool ordered =
        trace[i - 1].first < trace[i].first ||
        (trace[i - 1].first == trace[i].first &&
         trace[i - 1].second < trace[i].second);
    ASSERT_TRUE(ordered) << "out of order at " << i;
  }
  EXPECT_GT(eng.calendar_hits(), 0u);
}

namespace {

// Coroutines with different local footprints so the stress test churns
// several frame-pool size classes at once.
Task<void> small_frame_task(Engine& e) { co_await e.delay(1); }

Task<void> large_frame_task(Engine& e) {
  std::uint64_t pad[48] = {};
  for (int i = 0; i < 48; ++i) pad[i] = static_cast<std::uint64_t>(i);
  co_await e.delay(2);
  // Keep pad alive across the suspend so it is part of the frame.
  std::uint64_t sum = 0;
  for (std::uint64_t v : pad) sum += v;
  NVMECR_CHECK(sum == 48 * 47 / 2);
}

}  // namespace

TEST(FramePoolTest, StressRecyclesFramesAndLeaksNothing) {
  const uint64_t live_before = frames_live();
  const uint64_t recycled_before = frames_recycled();
  for (int wave = 0; wave < 50; ++wave) {
    Engine eng;
    for (int i = 0; i < 100; ++i) {
      eng.spawn(small_frame_task(eng));
      eng.spawn(large_frame_task(eng));
    }
    eng.run();
  }
  // Steady-state churn is served from the freelists, and a fully drained
  // engine leaves no frame alive (the leak probe for eager root destroy).
  EXPECT_GT(frames_recycled(), recycled_before);
  EXPECT_EQ(frames_live(), live_before);
}

TEST(FramePoolTest, PoolingToggleRoutesFreesCorrectly) {
  // Frames allocated pooled may be freed after pooling is switched off
  // (and vice versa): the per-frame origin header routes each free.
  const uint64_t live_before = frames_live();
  Engine eng;
  for (int i = 0; i < 32; ++i) eng.spawn(small_frame_task(eng));
  set_frame_pooling(false);
  for (int i = 0; i < 32; ++i) eng.spawn(large_frame_task(eng));
  eng.run();
  set_frame_pooling(true);
  EXPECT_EQ(frames_live(), live_before);
}

}  // namespace
}  // namespace nvmecr::sim
