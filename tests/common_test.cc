// Unit tests for the common kit: status, units, rng, stats, crc, table,
// logging.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/crc.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;

// ---------------------------------------------------------------------
// Logging (must run before anything else latches the NVMECR_LOG
// threshold, which is read once per process)
// ---------------------------------------------------------------------

uint64_t fake_clock(const void* ctx) {
  return *static_cast<const uint64_t*>(ctx);
}

TEST(LogTest, PrefixesSimTimeAndSubsystem) {
  setenv("NVMECR_LOG", "warn", /*overwrite=*/1);
  const uint64_t now_ns = 12345678;  // 12.346 ms
  log_set_time_source(&fake_clock, &now_ns);
  testing::internal::CaptureStderr();
  NVMECR_SLOG_WARN("oplog", "ring %d%% full", 93);
  NVMECR_LOG_WARN("untagged %s", "line");
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[12.346ms] [WARN] [oplog] ring 93% full\n"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("[12.346ms] [WARN] untagged line\n"), std::string::npos);

  // Without a time source the prefix is omitted entirely.
  log_set_time_source(nullptr, nullptr);
  EXPECT_EQ(log_time_source_ctx(), nullptr);
  testing::internal::CaptureStderr();
  NVMECR_SLOG_WARN("microfs", "plain");
  err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err, "[WARN] [microfs] plain\n");

  // Below-threshold levels stay silent.
  testing::internal::CaptureStderr();
  NVMECR_LOG_DEBUG("invisible");
  NVMECR_SLOG_INFO("oplog", "invisible");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = NotFoundError("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NoSpaceError("pool empty");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNoSpace);
}

Status helper_returns(Status in) {
  NVMECR_RETURN_IF_ERROR(in);
  return OkStatus();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helper_returns(OkStatus()).ok());
  EXPECT_EQ(helper_returns(IoError()).code(), ErrorCode::kIoError);
}

StatusOr<int> make_value(bool ok) {
  if (!ok) return InvalidArgumentError("nope");
  return 7;
}

Status assign_or(bool ok, int& out) {
  NVMECR_ASSIGN_OR_RETURN(out, make_value(ok));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(assign_or(true, out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(assign_or(false, out).code(), ErrorCode::kInvalidArgument);
}

TEST(UnitsTest, SizeLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(32_KiB, 32768u);
  EXPECT_EQ(1_GiB, 1073741824u);
  EXPECT_EQ(1_GBps, 1000000000u);
}

TEST(UnitsTest, TimeLiterals) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1000000);
  EXPECT_EQ(2_s, 2000000000);
}

TEST(UnitsTest, TransferTime) {
  // 1 GB at 1 GB/s (decimal) = 1 second.
  EXPECT_EQ(transfer_time(1000000000ull, 1_GBps), kSecond);
  // Zero rate = instant.
  EXPECT_EQ(transfer_time(12345, 0), 0);
  // Zero bytes = instant.
  EXPECT_EQ(transfer_time(0, 1_GBps), 0);
  // Sub-ns transfers round up to 1 ns.
  EXPECT_EQ(transfer_time(1, 100_GBps), 1);
}

TEST(UnitsTest, TransferTimeNoOverflowForTerabytes) {
  const uint64_t tb10 = 10ull << 40;
  const SimDuration d = transfer_time(tb10, 2_GBps);
  EXPECT_NEAR(to_seconds(d), static_cast<double>(tb10) / 2e9, 1e-3);
}

TEST(UnitsTest, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 4), 3u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(round_up(10, 4), 12u);
  EXPECT_EQ(round_up(8, 4), 8u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Mix64Avalanches) {
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(StreamingStatsTest, MeanVarianceCov) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 2.0);  // classic population-stdev example
  EXPECT_DOUBLE_EQ(s.cov(), 0.4);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.cov(), 0.0);
}

TEST(StreamingStatsTest, UniformLoadHasZeroCov) {
  StreamingStats s;
  for (int i = 0; i < 8; ++i) s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(SamplesTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(SamplesTest, QueriesAreConstCorrect) {
  Samples s;
  for (int i = 10; i >= 1; --i) s.add(static_cast<double>(i));
  // min()/max()/percentile() are usable through a const reference (the
  // lazy sort is an internal mutable detail) and interleave with add().
  const Samples& cs = s;
  EXPECT_DOUBLE_EQ(cs.min(), 1.0);
  EXPECT_DOUBLE_EQ(cs.max(), 10.0);
  EXPECT_DOUBLE_EQ(cs.percentile(0), 1.0);
  s.add(0.5);  // re-dirties the sort
  EXPECT_DOUBLE_EQ(cs.min(), 0.5);
  EXPECT_DOUBLE_EQ(cs.percentile(100), 10.0);
  EXPECT_EQ(cs.size(), 11u);
}

TEST(SamplesTest, CovMatchesStreaming) {
  Samples s;
  StreamingStats t;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform01() * 10 + 1;
    s.add(v);
    t.add(v);
  }
  EXPECT_NEAR(s.cov(), t.cov(), 1e-9);
}

TEST(CrcTest, KnownProperties) {
  const char msg[] = "123456789";
  const uint64_t c = crc64(msg, 9);
  EXPECT_NE(c, 0u);
  // Stable across calls.
  EXPECT_EQ(crc64(msg, 9), c);
  // Sensitive to any byte change.
  char msg2[] = "123456780";
  EXPECT_NE(crc64(msg2, 9), c);
}

TEST(CrcTest, SeedChaining) {
  const char a[] = "hello";
  const char b[] = "world";
  const uint64_t c1 = crc64(a, 5);
  const uint64_t chained = crc64(b, 5, c1);
  EXPECT_NE(chained, crc64(b, 5));
}

TEST(CrcTest, Crc64XzCheckValue) {
  // The CRC-64/XZ parameterization's published check value.
  const char msg[] = "123456789";
  EXPECT_EQ(crc64(msg, 9), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(detail::crc64_reference(msg, 9), 0x995DC9BBDF1939FAull);
}

// The slice-by-16 hot path must be bit-identical to the byte-at-a-time
// reference for every length class (tail handling: 16-byte groups, an
// 8-byte group, then single bytes), alignment, and seed.
TEST(CrcTest, SlicedMatchesReference) {
  Rng rng(1234);
  std::vector<unsigned char> buf(1024);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.uniform(256));
  for (size_t len : {0ul, 1ul, 7ul, 8ul, 9ul, 15ul, 16ul, 17ul, 31ul, 32ul,
                     63ul, 100ul, 255ul, 256ul, 1000ul}) {
    for (size_t shift : {0ul, 1ul, 3ul, 8ul}) {
      for (uint64_t seed : {0ull, 1ull, 0xdeadbeefcafef00dull}) {
        ASSERT_EQ(crc64(buf.data() + shift, len, seed),
                  detail::crc64_reference(buf.data() + shift, len, seed))
            << "len=" << len << " shift=" << shift << " seed=" << seed;
      }
    }
  }
}

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(uint64_t{42}), "42");
}

TEST(TablePrinterTest, PrintsWithoutCrash) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"beta", "2.0"});
  t.print(stderr);  // smoke: alignment code paths execute
}

}  // namespace
}  // namespace nvmecr
