// Offload pipeline tests: codec accounting, capability negotiation,
// per-stage host/target compute routing (digest, compression,
// delta-compaction), dead-target fallback to host compute, and the
// target-side XOR parity scheme's fabric savings + decode path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/models.h"
#include "nvmecr/runtime.h"
#include "offload/codec.h"
#include "offload/pipeline.h"
#include "redundancy/engine.h"
#include "redundancy/reconstruct.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::Scheduler;
using offload::Codec;
using offload::OffloadOptions;
using offload::OffloadSystem;

// ---------------------------------------------------------------------------
// Codec

TEST(CodecTest, NoneIsIdentity) {
  const Codec c = offload::codec_none();
  EXPECT_FALSE(c.enabled());
  EXPECT_EQ(c.wire_bytes(4_MiB), 4_MiB);
  EXPECT_EQ(c.compress_cost(4_MiB), 0);
  EXPECT_EQ(c.decompress_cost(4_MiB), 0);
}

TEST(CodecTest, ShrinksAndCharges) {
  const Codec c = offload::codec_lz4_class();
  EXPECT_TRUE(c.enabled());
  EXPECT_EQ(c.wire_bytes(4_MiB), 2_MiB);
  EXPECT_EQ(c.wire_bytes(0), 0u);
  EXPECT_GE(c.wire_bytes(1), 1u);  // non-empty input never vanishes
  EXPECT_EQ(c.compress_cost(1000), 300);
  EXPECT_EQ(c.decompress_cost(1000), 150);
  // Decompression is cheaper than compression for every preset.
  for (const Codec& p : offload::codec_presets()) {
    EXPECT_LE(p.decompress_ns_per_byte, p.compress_ns_per_byte) << p.name;
  }
}

TEST(CodecTest, FindByName) {
  ASSERT_TRUE(offload::find_codec("zstd-class").has_value());
  EXPECT_DOUBLE_EQ(offload::find_codec("zstd-class")->ratio, 3.0);
  EXPECT_FALSE(offload::find_codec("gzip").has_value());
}

// ---------------------------------------------------------------------------
// Pipeline fixtures

// `path` by value: these coroutines are spawned deferred, so a caller's
// temporary string must be copied into the frame.
sim::Task<Status> write_file(baselines::StorageClient& c, std::string path,
                             uint64_t bytes) {
  auto fd = co_await c.create(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(4_MiB, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.write(*fd, n));
    off += n;
  }
  NVMECR_CO_RETURN_IF_ERROR(co_await c.fsync(*fd));
  co_return co_await c.close(*fd);
}

sim::Task<Status> read_file(baselines::StorageClient& c, std::string path,
                            uint64_t bytes) {
  auto fd = co_await c.open_read(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(4_MiB, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.read(*fd, n));
    off += n;
  }
  co_return co_await c.close(*fd);
}

struct OffloadFixture {
  explicit OffloadFixture(uint32_t offload_caps = nvmf::kOffloadAll)
      : cluster(make_spec(offload_caps)), sched(cluster) {
    auto j = sched.allocate(/*nranks=*/2, /*procs_per_node=*/1, 256_MiB,
                            /*num_ssds=*/2);
    NVMECR_CHECK(j.ok());
    job = std::move(j).value();
    inner = std::make_unique<nvmecr_rt::NvmecrSystem>(cluster, job,
                                                      nvmecr_rt::RuntimeConfig{});
  }

  static ClusterSpec make_spec(uint32_t caps) {
    ClusterSpec spec;
    spec.compute_nodes = 2;
    spec.storage_nodes = 2;
    spec.pfs_servers = 2;  // LustreModel hosts OSSes on storage nodes
    spec.nvmf.offload_caps = caps;
    return spec;
  }

  std::unique_ptr<baselines::StorageClient> connect(OffloadSystem& sys,
                                                    int rank) {
    std::unique_ptr<baselines::StorageClient> out;
    cluster.engine().run_task(
        [](OffloadSystem& s, int r,
           std::unique_ptr<baselines::StorageClient>& o) -> sim::Task<void> {
          auto c = co_await s.connect(r);
          NVMECR_CHECK(c.ok());
          o = std::move(*c);
        }(sys, rank, out));
    return out;
  }

  Status run(sim::Task<Status> t) {
    Status out;
    cluster.engine().run_task(
        [](sim::Task<Status> task, Status& o) -> sim::Task<void> {
          o = co_await std::move(task);
        }(std::move(t), out));
    return out;
  }

  nvmf::NvmfTarget& target_of(uint32_t rank) {
    return cluster.target(cluster.storage_ssd_index(
        job.assignment.ssd_nodes[job.assignment.ssd_of_rank[rank]]));
  }

  Cluster cluster;
  Scheduler sched;
  JobAllocation job;
  std::unique_ptr<nvmecr_rt::NvmecrSystem> inner;
};

TEST(OffloadPipelineTest, NegotiationIntersectsAdvertisedCaps) {
  OffloadFixture f(nvmf::kOffloadDigest | nvmf::kOffloadCompress);
  OffloadOptions opts;
  opts.stages = nvmf::kOffloadAll;
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(sys.granted(0), nvmf::kOffloadDigest | nvmf::kOffloadCompress);
  EXPECT_EQ(sys.fallbacks(), 0u);
}

TEST(OffloadPipelineTest, ZeroStagesSkipsNegotiation) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = 0;
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_EQ(sys.granted(0), 0u);
}

TEST(OffloadPipelineTest, DigestRunsOnGrantedTarget) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = nvmf::kOffloadDigest;
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_TRUE(f.run(write_file(*client, "/ckpt", 32_MiB)).ok());
  // The CRC ran on the target's offload cores, not the host.
  EXPECT_GT(f.target_of(0).compute_busy_ns(), 0u);
  EXPECT_EQ(sys.host_compute_ns(), 0u);
}

TEST(OffloadPipelineTest, DigestFallsBackToHostWithoutGrant) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = 0;  // nothing negotiated: digest must run host-side
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_TRUE(f.run(write_file(*client, "/ckpt", 32_MiB)).ok());
  EXPECT_EQ(f.target_of(0).compute_busy_ns(), 0u);
  // 0.05 ns/B over 32 MiB.
  // Slack: the cost is charged per 4 MiB extent with ns truncation.
  EXPECT_GE(sys.host_compute_ns(), static_cast<uint64_t>(0.05 * 32_MiB) - 16);
}

TEST(OffloadPipelineTest, CompressedRoundTripTargetDecode) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = nvmf::kOffloadCompress;
  opts.digest_checks = false;
  opts.codec = offload::codec_lz4_class();
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_TRUE(f.run(write_file(*client, "/ckpt", 32_MiB)).ok());
  // Host paid the compress cost and nothing else.
  const auto compress_ns =
      static_cast<uint64_t>(opts.codec.compress_cost(32_MiB));
  EXPECT_GE(sys.host_compute_ns(), compress_ns - 16);  // per-extent rounding
  // Half the bytes landed on the device.
  uint64_t stored = 0;
  for (uint64_t b : sys.bytes_per_server()) stored += b;
  EXPECT_LT(stored, 20_MiB);
  // Read back full raw size; the target pays the inflate.
  const uint64_t busy_before = f.target_of(0).compute_busy_ns();
  EXPECT_TRUE(f.run(read_file(*client, "/ckpt", 32_MiB)).ok());
  EXPECT_GE(f.target_of(0).compute_busy_ns() - busy_before,
            static_cast<uint64_t>(opts.codec.decompress_cost(32_MiB)) - 16);
  EXPECT_LE(sys.host_compute_ns(), compress_ns);  // no decompress charged
}

TEST(OffloadPipelineTest, CompressedRoundTripHostDecode) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = 0;  // codec on, no grant: decompression stays host-side
  opts.digest_checks = false;
  opts.codec = offload::codec_lz4_class();
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_TRUE(f.run(write_file(*client, "/ckpt", 32_MiB)).ok());
  EXPECT_TRUE(f.run(read_file(*client, "/ckpt", 32_MiB)).ok());
  EXPECT_EQ(f.target_of(0).compute_busy_ns(), 0u);
  EXPECT_GE(sys.host_compute_ns(),
            static_cast<uint64_t>(opts.codec.compress_cost(32_MiB) +
                                  opts.codec.decompress_cost(32_MiB)) -
                32);
}

TEST(OffloadPipelineTest, CompactionMaterializesRestartImage) {
  OffloadFixture f;
  OffloadOptions opts;
  opts.stages = nvmf::kOffloadCompact;
  opts.digest_checks = false;
  OffloadSystem sys(f.cluster, *f.inner, f.job, opts);
  auto client = f.connect(sys, 0);
  // Full base then a small delta: the target folds the chain into a
  // full-size image covering the newest checkpoint.
  EXPECT_TRUE(f.run(write_file(*client, "/c0", 64_MiB)).ok());
  EXPECT_TRUE(f.run(write_file(*client, "/c1", 8_MiB)).ok());
  EXPECT_EQ(sys.restart_image_bytes(0, "/c0"), 0u);  // not the newest
  EXPECT_EQ(sys.restart_image_bytes(0, "/c1"), 64_MiB);
  EXPECT_GT(f.target_of(0).compute_busy_ns(), 0u);
  // Restart reads the one materialized image, not the delta chain.
  EXPECT_TRUE(f.run(read_file(*client, "/c1", 64_MiB)).ok());
  // Unlinking the covered checkpoint drops the image.
  EXPECT_TRUE(f.run([](baselines::StorageClient& c) -> sim::Task<Status> {
                co_return co_await c.unlink("/c1");
              }(*client))
                  .ok());
  EXPECT_EQ(sys.restart_image_bytes(0, "/c1"), 0u);
}

TEST(OffloadPipelineTest, DeadTargetFallsBackToHostCompute) {
  // Inner system independent of the NVMf target (PFS model), so the
  // data path survives the target daemon's death and only the offload
  // stages have to fall back.
  OffloadFixture f;
  baselines::LustreModel pfs(f.cluster);
  OffloadOptions opts;
  opts.stages = nvmf::kOffloadDigest;
  OffloadSystem sys(f.cluster, pfs, f.job, opts);
  auto client = f.connect(sys, 0);
  EXPECT_EQ(sys.granted(0), nvmf::kOffloadDigest);
  f.target_of(0).schedule_crash(f.cluster.engine().now());
  EXPECT_TRUE(f.run(write_file(*client, "/ckpt", 16_MiB)).ok());
  // Grant revoked, fallback recorded in the degraded manifest, CRC ran
  // host-side.
  EXPECT_EQ(sys.granted(0), 0u);
  EXPECT_EQ(sys.fallbacks(), 1u);
  ASSERT_FALSE(sys.fallback_log().empty());
  EXPECT_NE(sys.fallback_log().back().find("fell back"), std::string::npos);
  EXPECT_GT(sys.host_compute_ns(), 0u);
}

// ---------------------------------------------------------------------------
// Target-side XOR parity (redundancy::Scheme::kXorTarget)

struct XorRunResult {
  uint64_t ckpt_fabric_bytes = 0;
  uint64_t target_busy_ns = 0;
  uint64_t host_encode_ns = 0;
  bool recovered = false;
};

XorRunResult run_xor_scheme(redundancy::Scheme scheme, bool fail_and_recover) {
  ClusterSpec spec;
  spec.compute_nodes = 8;
  spec.storage_nodes = 8;
  spec.storage_racks = 8;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  auto job = sched.allocate(/*nranks=*/8, /*procs_per_node=*/1, 256_MiB,
                            /*num_ssds=*/4);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, {});
  redundancy::RedundancyOptions opts;
  opts.scheme = scheme;
  opts.xor_set_size = 4;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           opts);
  NVMECR_CHECK(dep.ok());
  redundancy::RedundantSystem& sys = *dep->system;

  XorRunResult res;
  std::vector<std::unique_ptr<baselines::StorageClient>> clients(8);
  sim::Engine& eng = cluster.engine();
  eng.run_task(
      [](sim::Engine& e, Cluster& cl, redundancy::RedundantSystem& s,
         std::vector<std::unique_ptr<baselines::StorageClient>>& cs,
         XorRunResult& r) -> sim::Task<void> {
        for (uint32_t rank = 0; rank < 8; ++rank) {
          auto c = co_await s.connect(static_cast<int>(rank));
          NVMECR_CHECK(c.ok());
          cs[rank] = std::move(*c);
        }
        const uint64_t fabric0 = cl.network().total_bytes_sent();
        sim::StatusJoiner joiner(e);
        for (uint32_t rank = 0; rank < 8; ++rank) {
          joiner.spawn(write_file(*cs[rank], "/ckpt", 16_MiB));
        }
        NVMECR_CHECK((co_await joiner.join()).ok());
        co_await s.quiesce();
        r.ckpt_fabric_bytes = cl.network().total_bytes_sent() - fabric0;
      }(eng, cluster, sys, clients, res));
  for (uint32_t t = 0; t < 8; ++t) {
    res.target_busy_ns += cluster.target(t).compute_busy_ns();
  }
  res.host_encode_ns = sys.host_encode_ns();
  EXPECT_EQ(sys.degraded_files(), 0u) << redundancy::scheme_name(scheme);

  if (fail_and_recover) {
    // Lose rank 0's primary failure domain, then rebuild through the
    // reconstruction view.
    const fabric::RackId lost = cluster.topology().failure_domain(
        job->assignment.ssd_nodes[job->assignment.ssd_of_rank[0]]);
    for (fabric::NodeId n : cluster.storage_nodes()) {
      if (cluster.topology().failure_domain(n) == lost) {
        cluster.storage_ssd(cluster.storage_ssd_index(n)).fail_device();
      }
    }
    redundancy::Reconstructor recon(sys);
    auto view = recon.client(0);
    eng.run_task(
        [](std::unique_ptr<baselines::StorageClient>& v,
           XorRunResult& r) -> sim::Task<void> {
          r.recovered = (co_await read_file(*v, "/ckpt", 16_MiB)).ok();
        }(view, res));
    const redundancy::RecoveryReport* rep = recon.find_report(0, "/ckpt");
    EXPECT_TRUE(rep != nullptr && rep->digest_ok);
    if (rep != nullptr) {
      EXPECT_EQ(rep->source, redundancy::RecoverySource::kXor);
    }
  }
  return res;
}

TEST(XorTargetTest, SavesFabricBytesAndMovesEncodeToTargets) {
  const XorRunResult host = run_xor_scheme(redundancy::Scheme::kXor, false);
  const XorRunResult tgt =
      run_xor_scheme(redundancy::Scheme::kXorTarget, false);
  // Host-side encode burns host CPU and ships parity over the fabric;
  // target-side burns target compute and keeps parity writes loopback.
  EXPECT_GT(host.host_encode_ns, 0u);
  EXPECT_EQ(host.target_busy_ns, 0u);
  EXPECT_EQ(tgt.host_encode_ns, 0u);
  EXPECT_GT(tgt.target_busy_ns, 0u);
  ASSERT_GT(host.ckpt_fabric_bytes, 0u);
  const double savings =
      1.0 - static_cast<double>(tgt.ckpt_fabric_bytes) /
                static_cast<double>(host.ckpt_fabric_bytes);
  EXPECT_GE(savings, 0.15) << "fabric " << host.ckpt_fabric_bytes << " -> "
                           << tgt.ckpt_fabric_bytes;
}

TEST(XorTargetTest, DecodesAfterDomainLoss) {
  const XorRunResult r = run_xor_scheme(redundancy::Scheme::kXorTarget, true);
  EXPECT_TRUE(r.recovered);
}

}  // namespace
}  // namespace nvmecr
