// Integration tests of the upper stack: storage balancer, scheduler,
// the NVMe-CR runtime system, the comparator models, the POSIX shim,
// multi-level routing, and full CoMD job runs across systems.
#include <gtest/gtest.h>

#include <set>

#include "baselines/consistent_hash.h"
#include "baselines/models.h"
#include "common/stats.h"
#include "nvmecr/balancer.h"
#include "nvmecr/cluster.h"
#include "nvmecr/multilevel.h"
#include "nvmecr/posix_shim.h"
#include "nvmecr/runtime.h"
#include "workloads/comd.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using baselines::StorageClient;
using nvmecr_rt::BalancerAssignment;
using nvmecr_rt::BalancerRequest;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::RuntimeConfig;
using nvmecr_rt::Scheduler;
using nvmecr_rt::StorageBalancer;
using workloads::ComdDriver;
using workloads::ComdParams;

// ---------------------------------------------------------------------
// Balancer
// ---------------------------------------------------------------------

TEST(BalancerTest, EvenRoundRobinAcrossSsds) {
  fabric::Topology topo = fabric::Topology::paper_testbed();
  BalancerRequest req;
  for (uint32_t r = 0; r < 448; ++r) {
    req.rank_nodes.push_back(
        topo.nodes_with_role(fabric::NodeRole::kCompute)[r / 28]);
  }
  req.storage_nodes = topo.nodes_with_role(fabric::NodeRole::kStorage);
  req.num_ssds = 8;
  auto a = StorageBalancer::assign(topo, req);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ssd_nodes.size(), 8u);
  for (uint32_t per : a->ranks_per_ssd) EXPECT_EQ(per, 56u);  // perfect
  // Slots within each SSD are dense 0..55.
  std::vector<std::set<uint32_t>> slots(8);
  for (uint32_t r = 0; r < 448; ++r) {
    EXPECT_TRUE(slots[a->ssd_of_rank[r]].insert(a->slot_of_rank[r]).second);
  }
  for (const auto& s : slots) EXPECT_EQ(s.size(), 56u);
}

TEST(BalancerTest, DerivesSsdCountFromGuidance) {
  fabric::Topology topo = fabric::Topology::paper_testbed();
  BalancerRequest req;
  for (uint32_t r = 0; r < 112; ++r) {
    req.rank_nodes.push_back(
        topo.nodes_with_role(fabric::NodeRole::kCompute)[r / 28]);
  }
  req.storage_nodes = topo.nodes_with_role(fabric::NodeRole::kStorage);
  auto a = StorageBalancer::assign(topo, req);
  ASSERT_TRUE(a.ok());
  // 112 ranks at >= 56 per SSD -> 2 SSDs.
  EXPECT_EQ(a->ssd_nodes.size(), 2u);
}

TEST(BalancerTest, PlacesDataInPartnerFailureDomain) {
  fabric::Topology topo = fabric::Topology::paper_testbed();
  BalancerRequest req;
  req.rank_nodes = {topo.nodes_with_role(fabric::NodeRole::kCompute)[0]};
  req.storage_nodes = topo.nodes_with_role(fabric::NodeRole::kStorage);
  req.num_ssds = 1;
  auto a = StorageBalancer::assign(topo, req);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(topo.failure_domain(a->ssd_nodes[0]),
            topo.failure_domain(req.rank_nodes[0]));
}

TEST(BalancerTest, RefusesSameDomainUnlessAllowed) {
  // Compute and storage in ONE rack: no partner domain exists.
  fabric::Topology topo;
  topo.add_rack(4, fabric::NodeRole::kCompute);
  const auto storage_in_same_rack = topo.nodes_in_rack(0);
  BalancerRequest req;
  req.rank_nodes = {storage_in_same_rack[0]};
  req.storage_nodes = {storage_in_same_rack[1]};
  req.num_ssds = 1;
  EXPECT_FALSE(StorageBalancer::assign(topo, req).ok());
  EXPECT_TRUE(StorageBalancer::assign(topo, req, true).ok());
}

TEST(BalancerTest, PartnerDomainsSortedByDistance) {
  fabric::Topology topo = fabric::Topology::paper_testbed();
  const auto storage = topo.nodes_with_role(fabric::NodeRole::kStorage);
  auto partners = StorageBalancer::partner_domains(topo, 0, storage);
  ASSERT_EQ(partners.size(), 1u);
  EXPECT_EQ(partners[0], 1u);
}

// ---------------------------------------------------------------------
// Consistent hashing ring (GlusterFS-era placement primitive)
// ---------------------------------------------------------------------

TEST(ConsistentHashTest, DeterministicPlacement) {
  baselines::ConsistentHashRing ring(8, 16);
  EXPECT_EQ(ring.points(), 8u * 16u);
  const uint32_t s = ring.place("/ckpt/rank0");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.place("/ckpt/rank0"), s);
  EXPECT_LT(s, 8u);
}

TEST(ConsistentHashTest, SpreadsKeysAcrossServers) {
  baselines::ConsistentHashRing ring(8, 64);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[ring.place("/file" + std::to_string(i))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 150);  // every server gets a meaningful share
    EXPECT_LT(c, 1500);
  }
}

TEST(ConsistentHashTest, MoreVnodesLowerVariance) {
  auto cov = [](uint32_t vnodes) {
    baselines::ConsistentHashRing ring(8, vnodes);
    StreamingStats stats;
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i) {
      ++counts[ring.place("k" + std::to_string(i))];
    }
    for (int c : counts) stats.add(c);
    return stats.cov();
  };
  EXPECT_GT(cov(2), cov(128));
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

TEST(SchedulerTest, AllocatesAndReleasesNamespaces) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job = sched.allocate(112, 28, 512_MiB, 2);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->nsid_per_ssd.size(), 2u);
  uint32_t with_ns = 0;
  for (uint32_t s = 0; s < cluster.storage_nodes().size(); ++s) {
    with_ns += cluster.storage_ssd(s).namespace_count();
  }
  EXPECT_EQ(with_ns, 2u);
  sched.release(*job);
  with_ns = 0;
  for (uint32_t s = 0; s < cluster.storage_nodes().size(); ++s) {
    with_ns += cluster.storage_ssd(s).namespace_count();
  }
  EXPECT_EQ(with_ns, 0u);
}

// ---------------------------------------------------------------------
// NVMe-CR runtime
// ---------------------------------------------------------------------

struct RuntimeFixture {
  Cluster cluster;
  Scheduler sched{cluster};

  JobAllocation alloc(uint32_t nranks, uint64_t part = 256_MiB,
                      uint32_t ssds = 0) {
    auto job = sched.allocate(nranks, 28, part, ssds);
    NVMECR_CHECK(job.ok());
    return std::move(job).value();
  }
};

TEST(NvmecrRuntimeTest, ClientWritesAndReadsBack) {
  RuntimeFixture f;
  nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(4), RuntimeConfig{});
  f.cluster.engine().run_task([](nvmecr_rt::NvmecrSystem& sys) -> sim::Task<void> {
    auto client = (co_await sys.connect(0)).value();
    auto fd = co_await client->create("/ckpt0");
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await client->write(*fd, 8_MiB)).ok());
    EXPECT_TRUE((co_await client->fsync(*fd)).ok());
    EXPECT_TRUE((co_await client->close(*fd)).ok());
    auto rfd = co_await client->open_read("/ckpt0");
    EXPECT_TRUE(rfd.ok());
    EXPECT_TRUE((co_await client->read(*rfd, 8_MiB)).ok());
    EXPECT_TRUE((co_await client->close(*rfd)).ok());
    EXPECT_TRUE((co_await client->unlink("/ckpt0")).ok());
  }(system));
}

TEST(NvmecrRuntimeTest, InstancesAreIsolated) {
  // Two ranks sharing one SSD: same path, different partitions — no
  // interference (private namespaces, §III-E).
  RuntimeFixture f;
  nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(2, 256_MiB, 1),
                                 RuntimeConfig{});
  f.cluster.engine().run_task([](nvmecr_rt::NvmecrSystem& sys) -> sim::Task<void> {
    auto c0 = (co_await sys.connect(0)).value();
    auto c1 = (co_await sys.connect(1)).value();
    auto fd0 = co_await c0->create("/same-name");
    auto fd1 = co_await c1->create("/same-name");
    EXPECT_TRUE(fd0.ok());
    EXPECT_TRUE(fd1.ok());
    EXPECT_TRUE((co_await c0->write(*fd0, 1_MiB)).ok());
    EXPECT_TRUE((co_await c1->write(*fd1, 2_MiB)).ok());
    EXPECT_TRUE((co_await c0->close(*fd0)).ok());
    EXPECT_TRUE((co_await c1->close(*fd1)).ok());
    // Each reads back its own content (sizes differ).
    auto r0 = co_await c0->open_read("/same-name");
    EXPECT_TRUE((co_await c0->read(*r0, 1_MiB)).ok());
    EXPECT_TRUE((co_await c0->close(*r0)).ok());
  }(system));
}

TEST(NvmecrRuntimeTest, KernelPathAttributesKernelTime) {
  RuntimeFixture f;
  RuntimeConfig config;
  config.userspace = false;
  {
    nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(1), config);
    f.cluster.engine().run_task(
        [](nvmecr_rt::NvmecrSystem& sys) -> sim::Task<void> {
          auto client = (co_await sys.connect(0)).value();
          auto fd = co_await client->create("/x");
          EXPECT_TRUE((co_await client->write(*fd, 4_MiB)).ok());
          EXPECT_TRUE((co_await client->close(*fd)).ok());
          client.reset();  // flush stats
          EXPECT_GT(sys.kernel_time(), 0);
        }(system));
  }
}

TEST(NvmecrRuntimeTest, UserspacePathHasZeroKernelTime) {
  RuntimeFixture f;
  nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(1), RuntimeConfig{});
  f.cluster.engine().run_task(
      [](nvmecr_rt::NvmecrSystem& sys) -> sim::Task<void> {
        auto client = (co_await sys.connect(0)).value();
        auto fd = co_await client->create("/x");
        EXPECT_TRUE((co_await client->write(*fd, 4_MiB)).ok());
        EXPECT_TRUE((co_await client->close(*fd)).ok());
        client.reset();
        EXPECT_EQ(sys.kernel_time(), 0);
      }(system));
}

TEST(NvmecrRuntimeTest, GlobalNamespaceSerializesCreates) {
  // Drilldown baseline: creates through the global namespace lock take
  // far longer than private-namespace creates at equal concurrency.
  auto run = [](bool private_ns) {
    RuntimeFixture f;
    RuntimeConfig config;
    config.private_namespace = private_ns;
    nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(16, 128_MiB, 2),
                                   config);
    sim::JoinCounter join(f.cluster.engine());
    for (int r = 0; r < 16; ++r) {
      join.spawn([](nvmecr_rt::NvmecrSystem& sys, int rank) -> sim::Task<void> {
        auto client = (co_await sys.connect(rank)).value();
        for (int i = 0; i < 8; ++i) {
          auto fd = co_await client->create("/f" + std::to_string(i));
          EXPECT_TRUE(fd.ok());
          EXPECT_TRUE((co_await client->close(*fd)).ok());
        }
      }(system, r));
    }
    f.cluster.engine().run();
    return f.cluster.engine().now();
  };
  const SimTime with_private = run(true);
  const SimTime with_global = run(false);
  EXPECT_GT(with_global, with_private * 2);
}

TEST(NvmecrRuntimeTest, MpiCommCrSplitDuringInit) {
  RuntimeFixture f;
  auto comm = minimpi::Comm::world(f.cluster.engine(), 4);
  nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(4, 128_MiB, 2),
                                 RuntimeConfig{}, comm.get());
  sim::JoinCounter join(f.cluster.engine());
  int connected = 0;
  for (int r = 0; r < 4; ++r) {
    join.spawn([](nvmecr_rt::NvmecrSystem& sys, int rank,
                  int& done) -> sim::Task<void> {
      auto client = co_await sys.connect(rank);
      EXPECT_TRUE(client.ok());
      ++done;
    }(system, r, connected));
  }
  f.cluster.engine().run();
  EXPECT_EQ(connected, 4);
  EXPECT_EQ(f.cluster.engine().live_roots(), 0);
}

// ---------------------------------------------------------------------
// POSIX shim
// ---------------------------------------------------------------------

TEST(PosixShimTest, InterceptsExpectedSymbols) {
  EXPECT_TRUE(nvmecr_rt::PosixShim::intercepts("open"));
  EXPECT_TRUE(nvmecr_rt::PosixShim::intercepts("write"));
  EXPECT_TRUE(nvmecr_rt::PosixShim::intercepts("MPI_Init"));
  EXPECT_FALSE(nvmecr_rt::PosixShim::intercepts("mmap"));
  EXPECT_FALSE(nvmecr_rt::PosixShim::intercepts("socket"));
}

TEST(PosixShimTest, LifecycleAndErrnoMapping) {
  RuntimeFixture f;
  nvmecr_rt::NvmecrSystem system(f.cluster, f.alloc(1), RuntimeConfig{});
  nvmecr_rt::PosixShim shim;
  f.cluster.engine().run_task([](nvmecr_rt::NvmecrSystem& sys,
                                 nvmecr_rt::PosixShim& sh) -> sim::Task<void> {
    EXPECT_FALSE(sh.initialized());
    // Named (not temporary) functor: see the GCC-12 coroutine-argument
    // note in DESIGN.md.
    std::function<sim::Task<
        StatusOr<std::unique_ptr<baselines::StorageClient>>>()>
        connect = [&sys]() { return sys.connect(0); };
    Status s = co_await sh.mpi_init(connect);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(sh.initialized());

    const int fd = co_await sh.open("/dump", /*create=*/true);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(co_await sh.write(fd, 1_MiB), static_cast<int64_t>(1_MiB));
    EXPECT_EQ(co_await sh.fsync(fd), 0);
    EXPECT_EQ(co_await sh.close(fd), 0);
    // ENOENT via the errno mapping.
    EXPECT_EQ(co_await sh.open("/missing", false),
              -static_cast<int>(nvmecr_rt::ShimErrno::kENOENT));
    EXPECT_EQ(co_await sh.close(1234),
              -static_cast<int>(nvmecr_rt::ShimErrno::kEBADF));
    EXPECT_TRUE((co_await sh.mpi_finalize()).ok());
    EXPECT_FALSE(sh.initialized());
  }(system, shim));
}

// ---------------------------------------------------------------------
// Multi-level policy
// ---------------------------------------------------------------------

TEST(MultiLevelTest, OneInTenGoesToPfs) {
  nvmecr_rt::MultiLevelPolicy policy(10);
  int pfs = 0;
  for (uint32_t i = 0; i < 30; ++i) pfs += policy.is_pfs_checkpoint(i);
  EXPECT_EQ(pfs, 3);
  EXPECT_TRUE(policy.is_pfs_checkpoint(0));
  EXPECT_TRUE(policy.is_pfs_checkpoint(10));
  // The newest checkpoint stays on the fast tier for fast restart.
  EXPECT_FALSE(policy.is_pfs_checkpoint(9));
}

// ---------------------------------------------------------------------
// Full CoMD job runs across systems
// ---------------------------------------------------------------------

ComdParams small_params(uint32_t nranks) {
  ComdParams p;
  p.nranks = nranks;
  p.procs_per_node = 28;
  p.atoms_per_rank = 4096;
  p.bytes_per_atom = 512;  // 2 MiB per rank per checkpoint
  p.checkpoints = 3;
  p.compute_per_period = 20 * kMillisecond;
  p.io_chunk = 1_MiB;
  return p;
}

TEST(ComdDriverTest, NvmecrRunProducesSaneMetrics) {
  Cluster cluster;
  Scheduler sched(cluster);
  const ComdParams params = small_params(28);
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->checkpoint_times.size(), 3u);
  // Small bursts land in capacitor-backed device RAM, so perceived
  // bandwidth may exceed the sustained-flash peak (efficiency > 1).
  EXPECT_GT(m->checkpoint_efficiency(), 0.2);
  EXPECT_LE(m->checkpoint_efficiency(), 4.0);
  EXPECT_GT(m->recovery_efficiency(), 0.2);
  // The per-rank perceived-bandwidth metric can exceed 1 under light
  // load (ranks' IO windows barely overlap).
  EXPECT_LE(m->recovery_efficiency(), 1.5);
  EXPECT_GT(m->progress_rate(), 0.0);
  EXPECT_LT(m->progress_rate(), 1.0);
  EXPECT_EQ(m->server_bytes.size(), 2u);
  EXPECT_LT(m->load_cov(), 0.05);  // round-robin balance
  EXPECT_EQ(m->kernel_time, 0);
}

TEST(ComdDriverTest, DfsModelsRunAndRankBelowNvmecr) {
  const ComdParams params = small_params(28);
  double eff_nvmecr = 0, eff_gluster = 0, eff_orange = 0;
  {
    Cluster cluster;
    Scheduler sched(cluster);
    auto job = sched.allocate(params.nranks, 28, 64_MiB, 8);
    ASSERT_TRUE(job.ok());
    RuntimeConfig config;
    config.fs.io_batch_hugeblocks = 64;
    nvmecr_rt::NvmecrSystem system(cluster, *job, config);
    auto m = ComdDriver::run(cluster, system, params);
    ASSERT_TRUE(m.ok());
    eff_nvmecr = m->checkpoint_efficiency();
  }
  {
    Cluster cluster;
    baselines::GlusterFsModel system(cluster, params.nranks, 28);
    auto m = ComdDriver::run(cluster, system, params);
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    eff_gluster = m->checkpoint_efficiency();
    EXPECT_GT(m->kernel_time, 0);
  }
  {
    Cluster cluster;
    baselines::OrangeFsModel system(cluster, params.nranks, 28);
    auto m = ComdDriver::run(cluster, system, params);
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    eff_orange = m->checkpoint_efficiency();
  }
  EXPECT_GT(eff_nvmecr, eff_gluster);
  EXPECT_GT(eff_gluster, eff_orange);
}

TEST(ComdDriverTest, CrailRunsOnSingleServer) {
  Cluster cluster;
  ComdParams params = small_params(28);
  baselines::CrailModel system(cluster, params.nranks, 28, 64_MiB);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_GT(m->checkpoint_efficiency(), 0.2);
  EXPECT_EQ(m->server_bytes.size(), 1u);
}

TEST(ComdDriverTest, LustreIsBoundByRaidPipes) {
  Cluster cluster;
  ComdParams params = small_params(28);
  baselines::LustreModel system(cluster);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  // Peak is 4 x 1.5 GB/s; efficiency must be positive and bounded.
  EXPECT_GT(m->checkpoint_efficiency(), 0.3);
  EXPECT_LE(m->checkpoint_efficiency(), 1.0);
  EXPECT_EQ(m->server_bytes.size(), 4u);
}

TEST(ComdDriverTest, MultiLevelRoutesToPfs) {
  Cluster cluster;
  Scheduler sched(cluster);
  ComdParams params = small_params(28);
  params.checkpoints = 4;
  params.keep_last = 4;  // no unlinks across tiers in this short run
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  baselines::LustreModel pfs(cluster);
  auto m = ComdDriver::run(cluster, system, params, &pfs, 4);
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  ASSERT_EQ(m->checkpoint_on_pfs.size(), 4u);
  EXPECT_TRUE(m->checkpoint_on_pfs[0]);
  EXPECT_FALSE(m->checkpoint_on_pfs[3]);
  // The PFS checkpoint is slower than the fast-tier ones.
  EXPECT_GT(m->checkpoint_times[0], m->checkpoint_times[1]);
}

}  // namespace
}  // namespace nvmecr
