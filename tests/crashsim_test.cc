// Crash-point exploration harness tests: the recorder's boundary and
// journal model, crash/recover over every persistence boundary of
// scripted and seeded workloads (including torn-write variants), golden
// boundary counts for a pinned seed, the group-commit ring-wrap crash
// scenario, and a redundancy-style mirrored-replica run where a whole
// storage domain is lost at every crash instant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crashsim/explore.h"
#include "crashsim/recorder.h"
#include "crashsim/workload.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

namespace nvmecr::crashsim {
namespace {

using namespace nvmecr::literals;
using microfs::MicroFs;

/// Format + workload against a recorded RamDevice. Returns the boundary
/// index right after format() (recovery is required from there on).
struct RecordedRun {
  sim::Engine eng;
  hw::RamDevice ram{64_MiB, 4096};
  RecordingDevice rec{ram};
  microfs::Options options;
  size_t post_format_boundary = 0;
  std::unique_ptr<MicroFs> fs;

  void format(microfs::Options opts = {}) {
    options = opts;
    auto f = eng.run_task(MicroFs::format(eng, rec, options));
    NVMECR_CHECK(f.ok());
    fs = std::move(f).value();
    post_format_boundary = rec.boundaries().size();
  }

  ExploreOptions explore_options(
      ExploreOptions::Torn torn = ExploreOptions::Torn::kSampled) const {
    ExploreOptions opts;
    opts.torn = torn;
    opts.fs = options;
    opts.require_recovery_from = post_format_boundary;
    return opts;
  }
};

TEST(CrashSimTest, RecorderJournalsWritesAndBoundaries) {
  sim::Engine eng;
  hw::RamDevice ram(1_MiB, 512);
  RecordingDevice rec(ram);
  eng.run_task([](RecordingDevice& d) -> sim::Task<void> {
    std::vector<std::byte> buf(1536, std::byte{0xab});
    EXPECT_TRUE((co_await d.write(0, buf)).ok());
    EXPECT_TRUE((co_await d.flush()).ok());
    EXPECT_TRUE((co_await d.write_tagged(4096, 2048, /*seed=*/7)).ok());
  }(rec));
  rec.record_teardown();

  ASSERT_EQ(rec.boundaries().size(), 4u);
  EXPECT_EQ(rec.boundaries()[0].kind, BoundaryKind::kWrite);
  EXPECT_EQ(rec.boundaries()[1].kind, BoundaryKind::kFlush);
  EXPECT_EQ(rec.boundaries()[2].kind, BoundaryKind::kWrite);
  EXPECT_EQ(rec.boundaries()[3].kind, BoundaryKind::kTeardown);
  EXPECT_EQ(rec.journal_size(), 2u);

  // The 1536-byte write spans 3 sectors; tearing after 1 sector leaves
  // exactly 512 durable bytes of it.
  EXPECT_EQ(rec.last_mutation_sectors(rec.boundaries()[0]), 3u);
  auto torn = rec.materialize(rec.boundaries()[0], /*torn_sectors=*/1);
  sim::Engine eng2;
  eng2.run_task([](ImageDevice& img) -> sim::Task<void> {
    std::vector<std::byte> head(512);
    EXPECT_TRUE((co_await img.read(0, head)).ok());
    for (std::byte b : head) EXPECT_EQ(b, std::byte{0xab});
    // Bytes past the tear read back as never written (zero).
    std::vector<std::byte> tail(512);
    EXPECT_TRUE((co_await img.read(512, tail)).ok());
    for (std::byte b : tail) EXPECT_EQ(b, std::byte{0});
  }(*torn));

  // The full state at the teardown boundary reproduces both writes.
  auto full = rec.materialize(rec.boundaries()[3]);
  sim::Engine eng3;
  eng3.run_task([](ImageDevice& img) -> sim::Task<void> {
    std::vector<std::byte> all(1536);
    EXPECT_TRUE((co_await img.read(0, all)).ok());
    for (std::byte b : all) EXPECT_EQ(b, std::byte{0xab});
    auto tag = co_await img.read_tagged(4096, 2048);
    EXPECT_TRUE(tag.ok());
    if (tag.ok()) {
      EXPECT_EQ(*tag, hw::PayloadStore::expected_tag(7, 4096, 2048, 512));
    }
  }(*full));
}

// The headline acceptance property: every persistence boundary of a
// reference seeded workload (well over 100 of them) recovers to an
// fsck-clean state with verifiable content, including torn variants.
TEST(CrashSimTest, ReferenceWorkloadRecoversAtEveryBoundary) {
  RecordedRun run;
  microfs::Options fsopts;
  fsopts.log_slots = 512;
  run.format(fsopts);

  WorkloadSpec spec;
  spec.seed = 20260807;
  spec.ops = 64;
  auto issued = run.eng.run_task(run_workload(*run.fs, spec));
  ASSERT_TRUE(issued.ok()) << issued.status().to_string();
  EXPECT_EQ(*issued, spec.ops);
  run.fs.reset();
  run.rec.record_teardown();

  ASSERT_GT(run.rec.boundaries().size(), 100u);
  const ExploreResult res = explore(run.rec, run.explore_options());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.boundaries, run.rec.boundaries().size());
  EXPECT_GE(res.states, res.boundaries);  // torn variants add states
  EXPECT_GT(res.recovered, 100u);
  // Typed errors only happen for mid-format states (the boundaries
  // before the superblock+initial-checkpoint commit and their torn
  // variants — a handful, never the workload's own states).
  EXPECT_LE(res.typed_errors, 4 * (run.post_format_boundary + 1));
}

TEST(CrashSimTest, ExhaustiveTornVariantsOnSmallWorkload) {
  RecordedRun run;
  microfs::Options fsopts;
  fsopts.log_slots = 128;
  run.format(fsopts);

  WorkloadSpec spec;
  spec.seed = 7;
  spec.ops = 12;
  spec.max_write = 24 * 1024;  // multi-sector data writes
  auto issued = run.eng.run_task(run_workload(*run.fs, spec));
  ASSERT_TRUE(issued.ok()) << issued.status().to_string();
  run.fs.reset();
  run.rec.record_teardown();

  const ExploreResult res =
      explore(run.rec, run.explore_options(ExploreOptions::Torn::kExhaustive));
  EXPECT_TRUE(res.ok()) << res.summary();
  // Exhaustive tearing multiplies states well past the boundary count.
  EXPECT_GT(res.states, res.boundaries);
}

// Golden regression pin: the boundary/journal counts of a fixed-seed
// workload are part of the crash-exploration contract. If a change to
// microfs IO patterns is intentional, update the constants; an
// unintended change to write ordering or batching fails here first.
TEST(CrashSimTest, GoldenBoundaryCountsForPinnedSeed) {
  RecordedRun run;
  microfs::Options fsopts;
  fsopts.log_slots = 256;
  run.format(fsopts);

  WorkloadSpec spec;
  spec.seed = 42;
  spec.ops = 32;
  auto issued = run.eng.run_task(run_workload(*run.fs, spec));
  ASSERT_TRUE(issued.ok()) << issued.status().to_string();
  run.fs.reset();
  run.rec.record_teardown();

  constexpr size_t kGoldenBoundaries = 70;
  constexpr size_t kGoldenJournal = 66;
  constexpr size_t kGoldenPostFormat = 2;
  EXPECT_EQ(run.rec.boundaries().size(), kGoldenBoundaries);
  EXPECT_EQ(run.rec.journal_size(), kGoldenJournal);
  EXPECT_EQ(run.post_format_boundary, kGoldenPostFormat);
}

// Group-commit regression (the ring-wrap drain-order bug): coalesced
// slot rewrites deferred across a ring wrap must drain in LSN order and
// stay dirty until durable — a crash between the drain's device writes
// must never replay a stale (shorter) extension record. A tiny ring plus
// per-file coalescing streams engineers exactly that wrap; exploring
// every boundary covers the crash-between-drain-writes states.
TEST(CrashSimTest, GroupCommitRingWrapCrashNeverReplaysStaleRecords) {
  RecordedRun run;
  microfs::Options fsopts;
  fsopts.log_slots = 8;
  fsopts.coalesce_window = 64;
  fsopts.auto_checkpoint = false;
  run.format(fsopts);

  auto st = run.eng.run_task([](MicroFs& m) -> sim::Task<Status> {
    auto fa = co_await m.creat("/a");
    NVMECR_CO_RETURN_IF_ERROR(fa.status());
    auto fb = co_await m.creat("/b");
    NVMECR_CO_RETURN_IF_ERROR(fb.status());
    // Alternating coalesced extension streams: both files' WRITE records
    // sit in dirty slots; repeated rounds force ring wraps (and forced
    // checkpoints once the ring fills), so drains cross the wrap point.
    for (int round = 0; round < 6; ++round) {
      for (int k = 0; k < 3; ++k) {
        NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fa, 40_KiB));
        NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fb, 40_KiB));
      }
      NVMECR_CO_RETURN_IF_ERROR(co_await m.fsync(*fa));
    }
    NVMECR_CO_RETURN_IF_ERROR(co_await m.close(*fa));
    NVMECR_CO_RETURN_IF_ERROR(co_await m.close(*fb));
    co_return OkStatus();
  }(*run.fs));
  ASSERT_TRUE(st.ok()) << st.to_string();
  run.fs.reset();
  run.rec.record_teardown();

  const ExploreResult res =
      explore(run.rec, run.explore_options(ExploreOptions::Torn::kNone));
  EXPECT_TRUE(res.ok()) << res.summary();
}

// Forced checkpoints triggered mid-operation (ring full inside log_op)
// snapshot mid-op state; the retried record must replay idempotently on
// top of it at every crash point after the checkpoint.
TEST(CrashSimTest, ForcedMidOpCheckpointRecoversAtEveryBoundary) {
  RecordedRun run;
  microfs::Options fsopts;
  fsopts.log_slots = 8;
  fsopts.coalesce_window = 0;  // every op takes a slot: frequent force
  fsopts.auto_checkpoint = false;
  run.format(fsopts);

  auto st = run.eng.run_task([](MicroFs& m) -> sim::Task<Status> {
    NVMECR_CO_RETURN_IF_ERROR(co_await m.mkdir("/d"));
    for (int i = 0; i < 20; ++i) {
      auto fd = co_await m.creat("/d/f" + std::to_string(i));
      NVMECR_CO_RETURN_IF_ERROR(fd.status());
      NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fd, 32_KiB));
      NVMECR_CO_RETURN_IF_ERROR(co_await m.close(*fd));
      if (i % 3 == 2) {
        NVMECR_CO_RETURN_IF_ERROR(
            co_await m.unlink("/d/f" + std::to_string(i - 1)));
      }
    }
    co_return OkStatus();
  }(*run.fs));
  ASSERT_TRUE(st.ok()) << st.to_string();
  run.fs.reset();
  run.rec.record_teardown();

  const ExploreResult res = explore(run.rec, run.explore_options());
  EXPECT_TRUE(res.ok()) << res.summary();
}

// rename() is the newest WAL op; crash at every point of a rename-heavy
// script must recover either the old or the new name, never both or
// neither — fsck's dirfile/namespace cross-check enforces exactly that.
TEST(CrashSimTest, RenameCrashRecoversOldOrNewNameNeverBoth) {
  RecordedRun run;
  run.format();

  auto st = run.eng.run_task([](MicroFs& m) -> sim::Task<Status> {
    NVMECR_CO_RETURN_IF_ERROR(co_await m.mkdir("/src"));
    NVMECR_CO_RETURN_IF_ERROR(co_await m.mkdir("/dst"));
    for (int i = 0; i < 4; ++i) {
      const std::string from = "/src/f" + std::to_string(i);
      auto fd = co_await m.creat(from);
      NVMECR_CO_RETURN_IF_ERROR(fd.status());
      NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fd, 48_KiB));
      NVMECR_CO_RETURN_IF_ERROR(co_await m.close(*fd));
      NVMECR_CO_RETURN_IF_ERROR(
          co_await m.rename(from, "/dst/g" + std::to_string(i)));
    }
    // Same-directory rename and rename of an open file.
    auto fd = co_await m.creat("/src/keepopen");
    NVMECR_CO_RETURN_IF_ERROR(fd.status());
    NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fd, 32_KiB));
    NVMECR_CO_RETURN_IF_ERROR(co_await m.rename("/src/keepopen", "/src/r"));
    NVMECR_CO_RETURN_IF_ERROR(co_await m.write_tagged(*fd, 32_KiB));
    NVMECR_CO_RETURN_IF_ERROR(co_await m.close(*fd));
    co_return OkStatus();
  }(*run.fs));
  ASSERT_TRUE(st.ok()) << st.to_string();
  run.fs.reset();
  run.rec.record_teardown();

  const ExploreResult res = explore(run.rec, run.explore_options());
  EXPECT_TRUE(res.ok()) << res.summary();

  // The final boundary is the clean state: every rename fully applied.
  auto img = run.rec.materialize(run.rec.boundaries().back());
  sim::Engine eng;
  auto fs = eng.run_task(MicroFs::recover(eng, *img, run.options));
  ASSERT_TRUE(fs.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE((*fs)->stat("/src/f" + std::to_string(i)).ok());
    EXPECT_TRUE((*fs)->stat("/dst/g" + std::to_string(i)).ok());
  }
  EXPECT_TRUE((*fs)->stat("/src/r").ok());
  EXPECT_EQ((*fs)->stat("/src/r")->size, 64_KiB);
}

// Redundancy-crossing run: the same seeded workload mirrored onto two
// devices (two storage domains). The primary domain is then lost and
// the recorded replica is crash-explored — at EVERY instant the
// surviving domain must recover to an fsck-clean state, and at the
// final boundary it serves the full namespace the primary had.
TEST(CrashSimTest, MirroredReplicaSurvivesDomainLossAtEveryBoundary) {
  WorkloadSpec spec;
  spec.seed = 99;
  spec.ops = 28;
  spec.w_unlink = 1;

  // Primary domain (plain device).
  sim::Engine peng;
  hw::RamDevice primary(64_MiB, 4096);
  auto pfs = peng.run_task(MicroFs::format(peng, primary, {})).value();
  ASSERT_TRUE(peng.run_task(run_workload(*pfs, spec)).ok());

  // Replica domain (recorded), fed the identical deterministic stream.
  RecordedRun run;
  run.format();
  auto issued = run.eng.run_task(run_workload(*run.fs, spec));
  ASSERT_TRUE(issued.ok());
  run.fs.reset();
  run.rec.record_teardown();

  const ExploreResult res = explore(run.rec, run.explore_options());
  EXPECT_TRUE(res.ok()) << res.summary();

  // Domain loss at the last instant: the replica alone reproduces the
  // primary's namespace byte for byte (tagged content verified by the
  // explorer above; names and sizes compared here).
  auto img = run.rec.materialize(run.rec.boundaries().back());
  sim::Engine eng;
  auto rfs = eng.run_task(MicroFs::recover(eng, *img, run.options));
  ASSERT_TRUE(rfs.ok());
  std::vector<std::string> pending{"/"};
  while (!pending.empty()) {
    const std::string dir = pending.back();
    pending.pop_back();
    auto pnames = pfs->readdir(dir);
    auto rnames = (*rfs)->readdir(dir);
    ASSERT_TRUE(pnames.ok() && rnames.ok()) << dir;
    EXPECT_EQ(*pnames, *rnames) << dir;
    for (const std::string& name : *pnames) {
      const std::string path = dir == "/" ? "/" + name : dir + "/" + name;
      auto pst = pfs->stat(path);
      auto rst = (*rfs)->stat(path);
      ASSERT_TRUE(pst.ok() && rst.ok()) << path;
      EXPECT_EQ(pst->size, rst->size) << path;
      EXPECT_EQ(pst->type, rst->type) << path;
      if (pst->type == microfs::InodeType::kDirectory) {
        pending.push_back(path);
      }
    }
  }
}

// Every recovered state of a seeded run also satisfies fsck directly
// (not just via the explorer): spot-check the midpoint boundary.
TEST(CrashSimTest, FsckPassesOnAMidRunCrashState) {
  RecordedRun run;
  run.format();
  WorkloadSpec spec;
  spec.seed = 3;
  spec.ops = 24;
  ASSERT_TRUE(run.eng.run_task(run_workload(*run.fs, spec)).ok());
  run.fs.reset();
  run.rec.record_teardown();

  const size_t mid =
      run.post_format_boundary +
      (run.rec.boundaries().size() - run.post_format_boundary) / 2;
  auto img = run.rec.materialize(run.rec.boundaries()[mid]);
  sim::Engine eng;
  auto fs = eng.run_task(MicroFs::recover(eng, *img, run.options));
  ASSERT_TRUE(fs.ok()) << fs.status().to_string();
  auto report = eng.run_task((*fs)->fsck());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_string();
  EXPECT_GT(report->files + report->directories, 0u);
}

}  // namespace
}  // namespace nvmecr::crashsim
