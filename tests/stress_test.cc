// Endurance/stress tests: operation-log ring wraparound across many
// state-checkpoint epochs, deep directory hierarchies, and long
// create/write/unlink cycles that must not leak hugeblocks or log slots.
#include <gtest/gtest.h>

#include "crashsim/workload.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

TEST(StressTest, LogRingWrapsManyEpochs) {
  sim::Engine eng;
  hw::RamDevice dev(128_MiB, 4096);
  Options options;
  options.log_slots = 24;           // tiny ring: wraps constantly
  options.coalesce_window = 0;      // every op takes a slot
  options.checkpoint_free_threshold = 0.5;
  auto fs = eng.run_task(MicroFs::format(eng, dev, options)).value();
  eng.run_task([](MicroFs& m) -> sim::Task<void> {
    for (int round = 0; round < 40; ++round) {
      const std::string path = "/r" + std::to_string(round % 6);
      auto fd = co_await m.creat(path);  // truncates on reuse
      EXPECT_TRUE(fd.ok());
      EXPECT_TRUE((co_await m.write_tagged(*fd, 256_KiB)).ok());
      EXPECT_TRUE((co_await m.close(*fd)).ok());
    }
  }(*fs));
  eng.run();
  // Dozens of forced/background checkpoints, slots always recycled.
  EXPECT_GT(fs->stats().state_checkpoints, 5u);
  EXPECT_LE(fs->log_capacity() - fs->log_free_slots(), 24u);
  // Recovery after heavy wraparound reconstructs the live namespace.
  fs.reset();
  auto rec = eng.run_task(MicroFs::recover(eng, dev, options)).value();
  auto names = rec->readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 6u);
  eng.run_task([](MicroFs& m,
                  std::vector<std::string> files) -> sim::Task<void> {
    for (const auto& n : files) {
      EXPECT_TRUE((co_await m.verify_tagged("/" + n)).ok()) << n;
    }
  }(*rec, *names));
}

TEST(StressTest, DeepDirectoryHierarchy) {
  sim::Engine eng;
  hw::RamDevice dev(128_MiB, 4096);
  auto fs = eng.run_task(MicroFs::format(eng, dev, {})).value();
  std::string path;
  eng.run_task([](MicroFs& m, std::string& deepest) -> sim::Task<void> {
    std::string p;
    for (int depth = 0; depth < 24; ++depth) {
      p += "/d" + std::to_string(depth);
      EXPECT_TRUE((co_await m.mkdir(p)).ok()) << p;
    }
    auto fd = co_await m.creat(p + "/leaf");
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    EXPECT_TRUE((co_await m.close(*fd)).ok());
    deepest = p;
  }(*fs, path));
  // Every level lists exactly its child; crash-recover and re-check.
  fs.reset();
  auto rec = eng.run_task(MicroFs::recover(eng, dev, {})).value();
  std::string p;
  for (int depth = 0; depth < 24; ++depth) {
    auto names = rec->readdir(p.empty() ? "/" : p);
    ASSERT_TRUE(names.ok()) << p;
    ASSERT_EQ(names->size(), 1u) << p;
    p += "/d" + std::to_string(depth);
  }
  EXPECT_EQ(rec->stat(path + "/leaf")->size, 64_KiB);
  eng.run_task([](MicroFs& m, const std::string& leaf) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged(leaf)).ok());
  }(*rec, path + "/leaf"));
}

TEST(StressTest, LongCycleDoesNotLeakBlocksOrSlots) {
  sim::Engine eng;
  hw::RamDevice dev(96_MiB, 4096);
  Options options;
  options.log_slots = 128;
  auto fs = eng.run_task(MicroFs::format(eng, dev, options)).value();
  uint64_t baseline_used = 0;
  eng.run_task([](MicroFs& m, uint64_t& baseline) -> sim::Task<void> {
    // Baseline after the root dirfile exists.
    auto fd0 = co_await m.creat("/warmup");
    co_await m.close(*fd0);
    EXPECT_TRUE((co_await m.unlink("/warmup")).ok());
    baseline = m.data_region_blocks() - m.free_blocks();
    // 150 create/write/unlink cycles, sizes varying; the partition is
    // far smaller than the cumulative traffic (~1.9 GiB), so any block
    // leak would exhaust the pool.
    for (int i = 0; i < 150; ++i) {
      const std::string path = "/cycle" + std::to_string(i % 3);
      auto fd = co_await m.creat(path);
      EXPECT_TRUE(fd.ok()) << i;
      const uint64_t len = (1 + i % 13) * 1_MiB;
      EXPECT_TRUE((co_await m.write_tagged(*fd, len)).ok()) << i;
      EXPECT_TRUE((co_await m.close(*fd)).ok());
      if (i % 3 == 2) {
        EXPECT_TRUE((co_await m.unlink("/cycle0")).ok());
        EXPECT_TRUE((co_await m.unlink("/cycle1")).ok());
        EXPECT_TRUE((co_await m.unlink("/cycle2")).ok());
      }
    }
  }(*fs, baseline_used));
  eng.run();
  // Everything unlinked: allocation census back to the baseline.
  EXPECT_EQ(fs->data_region_blocks() - fs->free_blocks(), baseline_used);
  EXPECT_EQ(fs->open_file_count(), 0);
}

TEST(StressTest, ManyFilesInOneDirectory) {
  sim::Engine eng;
  hw::RamDevice dev(256_MiB, 4096);
  auto fs = eng.run_task(MicroFs::format(eng, dev, {})).value();
  constexpr int kFiles = 600;
  eng.run_task([](MicroFs& m, int nfiles) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.mkdir("/bulk")).ok());
    for (int i = 0; i < nfiles; ++i) {
      auto fd = co_await m.creat("/bulk/f" + std::to_string(i));
      EXPECT_TRUE(fd.ok()) << i;
      EXPECT_TRUE((co_await m.close(*fd)).ok());
    }
  }(*fs, kFiles));
  eng.run();
  auto names = fs->readdir("/bulk");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), static_cast<size_t>(kFiles));
  // The on-device dirfile stream agrees.
  eng.run_task([](MicroFs& m, size_t nfiles) -> sim::Task<void> {
    auto stream = co_await m.read_dirfile("/bulk");
    EXPECT_TRUE(stream.ok());
    if (stream.ok()) EXPECT_EQ(live_view(*stream).size(), nfiles);
  }(*fs, static_cast<size_t>(kFiles)));
  // Crash-recover with this many namespace entries.
  fs.reset();
  auto rec = eng.run_task(MicroFs::recover(eng, dev, {})).value();
  EXPECT_EQ(rec->readdir("/bulk")->size(), static_cast<size_t>(kFiles));
}

TEST(StressTest, SeededChurnSurvivesRepeatedCrashRecoverCycles) {
  // Long-run churn: each round drives a seeded random workload (its own
  // subtree, so rounds never collide), then "crashes" (drops the mount
  // without any shutdown) and recovers. After every cycle the full fsck
  // invariant set must hold and all tagged content must verify — a slow
  // leak of blocks, log slots, or dirents would compound across rounds
  // and trip the cross-checks.
  sim::Engine eng;
  hw::RamDevice dev(192_MiB, 4096);
  Options options;
  options.log_slots = 96;  // small ring: forced checkpoints mid-churn
  auto fs = eng.run_task(MicroFs::format(eng, dev, options)).value();
  for (int round = 0; round < 6; ++round) {
    crashsim::WorkloadSpec spec;
    spec.seed = 0xc0ffee + static_cast<uint64_t>(round);
    spec.ops = 48;
    spec.max_files = 12;
    spec.max_write = 64_KiB;
    spec.prefix = "/round" + std::to_string(round);
    auto issued = eng.run_task(crashsim::run_workload(*fs, spec));
    ASSERT_TRUE(issued.ok()) << "round " << round << ": "
                             << issued.status().to_string();

    fs.reset();  // crash: no fsync, no close, no checkpoint
    auto rec = eng.run_task(MicroFs::recover(eng, dev, options));
    ASSERT_TRUE(rec.ok()) << "round " << round << ": "
                          << rec.status().to_string();
    fs = std::move(rec).value();

    auto report = eng.run_task(fs->fsck());
    ASSERT_TRUE(report.ok()) << "round " << round;
    EXPECT_TRUE(report->clean())
        << "round " << round << "\n"
        << report->to_string();
    // Prior rounds' subtrees are still intact.
    for (int r = 0; r <= round; ++r) {
      EXPECT_TRUE(fs->stat("/round" + std::to_string(r)).ok()) << r;
    }
  }
  EXPECT_EQ(fs->open_file_count(), 0);
}

}  // namespace
}  // namespace nvmecr::microfs
