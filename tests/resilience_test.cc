// Resilience layer tests (DESIGN.md §13): typed retryable errors and the
// shim errno mapping, link-fault windows on the fabric, detection
// hysteresis (a 10x straggler must NOT be declared dead; a crashed
// target MUST be, deterministically), balancer domain exclusion with
// typed exhaustion, mid-checkpoint failover to a partner-domain spare,
// background healing back to full redundancy, and the 2-of-8 fault-storm
// acceptance run with bit-identical metrics across two runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "nvmecr/posix_shim.h"
#include "nvmecr/runtime.h"
#include "obs/metrics.h"
#include "offload/pipeline.h"
#include "redundancy/engine.h"
#include "resilience/failover.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "simcore/trace.h"
#include "workloads/comd.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::RuntimeConfig;
using nvmecr_rt::Scheduler;
using resilience::HealthMonitor;
using resilience::HealthParams;
using resilience::ResilienceOptions;
using resilience::ResilientSystem;
using resilience::RetryPolicy;
using resilience::TargetState;

ClusterSpec make_spec(uint32_t storage_nodes, uint32_t storage_racks,
                      uint32_t compute_nodes = 4) {
  ClusterSpec spec;
  spec.compute_nodes = compute_nodes;
  spec.storage_nodes = storage_nodes;
  spec.storage_racks = storage_racks;
  return spec;
}

sim::Task<Status> write_file(baselines::StorageClient& c,
                             const std::string& path, uint64_t bytes,
                             uint64_t chunk = 1_MiB) {
  auto fd = co_await c.create(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(chunk, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.write(*fd, n));
    off += n;
  }
  NVMECR_CO_RETURN_IF_ERROR(co_await c.fsync(*fd));
  co_return co_await c.close(*fd);
}

sim::Task<Status> read_file(baselines::StorageClient& c,
                            const std::string& path, uint64_t bytes,
                            uint64_t chunk = 1_MiB) {
  auto fd = co_await c.open_read(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(chunk, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.read(*fd, n));
    off += n;
  }
  co_return co_await c.close(*fd);
}

// ---------------------------------------------------------------------------
// Typed errors + shim errno mapping (satellite a)

TEST(ResilienceStatusTest, RetryableTaxonomyAndErrnos) {
  EXPECT_TRUE(is_retryable(ErrorCode::kTimedOut));
  EXPECT_TRUE(is_retryable(ErrorCode::kUnreachable));
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_FALSE(is_retryable(ErrorCode::kIoError));
  EXPECT_FALSE(is_retryable(ErrorCode::kCorruption));
  EXPECT_FALSE(is_retryable(ErrorCode::kInvalidArgument));

  // The POSIX shim surfaces the new codes as the right errnos.
  EXPECT_EQ(nvmecr_rt::to_errno(TimedOutError("x")),
            nvmecr_rt::ShimErrno::kTimedOut);
  EXPECT_EQ(nvmecr_rt::to_errno(UnreachableError("x")),
            nvmecr_rt::ShimErrno::kHostUnreach);
  EXPECT_EQ(static_cast<int>(nvmecr_rt::ShimErrno::kTimedOut), 110);
  EXPECT_EQ(static_cast<int>(nvmecr_rt::ShimErrno::kHostUnreach), 113);
}

// ---------------------------------------------------------------------------
// Fabric link-fault windows

TEST(NetworkFaultTest, LinkDownWindowTimesOutThenRecovers) {
  Cluster cluster(make_spec(2, 1));
  fabric::Network& net = cluster.network();
  const fabric::NodeId a = cluster.compute_nodes()[0];
  const fabric::NodeId b = cluster.storage_nodes()[0];

  net.add_link_down(b, /*from=*/0, /*until=*/1 * kMillisecond);
  EXPECT_FALSE(net.link_up(b, 0));
  EXPECT_FALSE(net.link_up(b, 999'999));
  EXPECT_TRUE(net.link_up(b, 1 * kMillisecond));

  cluster.engine().run_task([](Cluster& c, fabric::Network& n,
                               fabric::NodeId src,
                               fabric::NodeId dst) -> sim::Task<void> {
    // During the window the transfer burns the transport timeout and
    // fails typed-retryable.
    Status s = co_await n.try_transfer(src, dst, 1_MiB);
    EXPECT_EQ(s.code(), ErrorCode::kTimedOut);
    EXPECT_EQ(c.engine().now(), n.params().transport_timeout);
    // After the window it goes through.
    co_await c.engine().sleep_until(1 * kMillisecond);
    s = co_await n.try_transfer(src, dst, 1_MiB);
    EXPECT_TRUE(s.ok()) << s.to_string();
  }(cluster, net, a, b));
}

// ---------------------------------------------------------------------------
// Detection hysteresis (satellite c)

// A straggling SSD at 10x service time still completes every IO: the
// monitor must never declare it suspect or dead, and the workload
// finishes (slowly) on the primary with zero failovers.
TEST(HysteresisTest, TenXStragglerIsNotFailedOver) {
  Cluster cluster(make_spec(4, 4));
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);

  const fabric::NodeId node = sys.primary_node_of(0);
  cluster.storage_ssd(cluster.storage_ssd_index(node))
      .set_straggler(10.0, /*from=*/0, /*until=*/SimTime(1) << 60);

  cluster.engine().run_task(
      [](ResilientSystem& s, HealthMonitor& m,
         fabric::NodeId n) -> sim::Task<void> {
        auto c = co_await s.connect(0);
        NVMECR_CHECK(c.ok());
        EXPECT_TRUE((co_await write_file(**c, "/slow", 8_MiB)).ok());
        EXPECT_EQ(m.state(n), TargetState::kHealthy);
        EXPECT_TRUE((co_await read_file(**c, "/slow", 8_MiB)).ok());
      }(sys, monitor, node));

  EXPECT_EQ(monitor.state(node), TargetState::kHealthy);
  EXPECT_EQ(monitor.dead_since(node), 0);
  EXPECT_EQ(sys.failovers(), 0u);
}

// A crashed target must be declared dead within the detection window:
// max_attempts IO timeouts plus the backoffs between them. The declared
// time is deterministic — two identical runs agree exactly.
TEST(HysteresisTest, CrashedTargetDeclaredDeadDeterministically) {
  auto run_once = [](SimTime crash_at) -> std::pair<SimTime, uint64_t> {
    Cluster cluster(make_spec(4, 4));
    Scheduler sched(cluster);
    auto job = sched.allocate(1, 1, 64_MiB, 1);
    NVMECR_CHECK(job.ok());

    HealthMonitor monitor(cluster.engine(), cluster.topology());
    RetryPolicy policy;
    RuntimeConfig config;
    config.device_wrapper = resilience::make_retry_wrapper(
        cluster.engine(), monitor, policy, /*seed=*/42);
    nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
    ResilientSystem sys(cluster, sched, primary, monitor, *job, config);

    const fabric::NodeId node = sys.primary_node_of(0);
    hw::NvmeSsd& ssd = cluster.storage_ssd(cluster.storage_ssd_index(node));
    ssd.schedule_crash(crash_at);

    cluster.engine().run_task(
        [](Cluster& c, ResilientSystem& s,
           SimTime at) -> sim::Task<void> {
          auto conn = co_await s.connect(0);
          NVMECR_CHECK(conn.ok());
          auto client = std::move(*conn);
          co_await c.engine().sleep_until(at);
          // The checkpoint stream keeps flowing; the resilience layer
          // absorbs the death (detection + failover to a spare).
          EXPECT_TRUE((co_await write_file(*client, "/ckpt", 4_MiB)).ok());
        }(cluster, sys, crash_at));

    NVMECR_CHECK(monitor.dead_since(node) != 0);
    return {monitor.dead_since(node), sys.failovers()};
  };

  const SimTime crash_at = 2 * kMillisecond;
  auto [dead1, failovers1] = run_once(crash_at);
  auto [dead2, failovers2] = run_once(crash_at);

  // Deterministic: identical runs declare death at the identical tick.
  EXPECT_EQ(dead1, dead2);
  EXPECT_EQ(failovers1, failovers2);
  EXPECT_GE(failovers1, 1u);

  // Within the detection window: the first IO lands at the crash point,
  // then at most max_attempts timeouts + max backoffs (with jitter).
  RetryPolicy policy;
  const SimDuration io_timeout = 500'000;  // hw::NvmeSsd default
  const SimTime window =
      policy.max_attempts *
      (io_timeout +
       static_cast<SimDuration>(static_cast<double>(policy.max_backoff) *
                                (1.0 + policy.jitter)));
  EXPECT_GE(dead1, crash_at);
  EXPECT_LE(dead1, crash_at + window);
}

// Heartbeat-based detection: misses accrue hysteresis, recovery flips
// the state machine through healing, a mid-heal relapse goes straight
// back to dead.
TEST(HysteresisTest, HeartbeatStateMachine) {
  Cluster cluster(make_spec(2, 2));
  HealthMonitor monitor(cluster.engine(), cluster.topology(),
                        HealthParams{.dead_after_misses = 3,
                                     .heartbeat_period = 100'000});
  const fabric::NodeId node = cluster.storage_nodes()[0];
  monitor.track(node);

  nvmf::NvmfTarget& target = cluster.target(0);
  target.schedule_crash(/*at=*/150'000, /*recover_at=*/650'000);

  cluster.engine().spawn(monitor.heartbeat(
      [&](fabric::NodeId n, SimTime t) {
        return cluster.target(cluster.storage_ssd_index(n)).alive(t);
      },
      /*until=*/1 * kMillisecond));
  cluster.engine().run();

  // Probes at 100us (ok), 200/300/400us (miss -> suspect -> dead at the
  // third), 700us+ (ok -> healing). Healing only completes via
  // note_healed, which nothing issued here.
  EXPECT_EQ(monitor.state(node), TargetState::kHealing);
  EXPECT_EQ(monitor.dead_since(node), 400'000);

  monitor.note_healed(node);
  EXPECT_EQ(monitor.state(node), TargetState::kHealthy);

  // Relapse during healing: no fresh hysteresis.
  monitor.note_miss(node);
  monitor.note_miss(node);
  monitor.note_miss(node);
  EXPECT_EQ(monitor.state(node), TargetState::kDead);
  monitor.note_ok(node);
  EXPECT_EQ(monitor.state(node), TargetState::kHealing);
  monitor.note_miss(node);
  EXPECT_EQ(monitor.state(node), TargetState::kDead);
}

// A target that flaps just under the hysteresis boundary — repeated
// outages two probe periods long against dead_after_misses = 3 — must
// oscillate healthy <-> suspect (one false alarm per flap, never a
// death), and once it finally dies for real and heals, converge to
// healthy. The whole dance must be deterministic across two runs.
TEST(HysteresisTest, FlappingTargetConvergesWithBoundedFalseAlarms) {
  struct Outcome {
    uint64_t transitions = 0;
    uint64_t false_alarms = 0;
    uint64_t deaths = 0;
    TargetState final_state = TargetState::kDead;
  };
  constexpr uint32_t kFlaps = 6;
  auto run_flap_scenario = [&]() {
    Cluster cluster(make_spec(2, 2));
    obs::MetricsRegistry metrics;
    obs::Observer o;
    o.metrics = &metrics;
    HealthMonitor monitor(cluster.engine(), cluster.topology(),
                          HealthParams{.dead_after_misses = 3,
                                       .heartbeat_period = 100'000});
    monitor.set_observer(o);
    const fabric::NodeId node = cluster.storage_nodes()[0];
    monitor.track(node);

    // Probes land at multiples of 100us. Each flap window [150,350)us
    // (mod 600us) eats exactly two probes: suspect, then recovery —
    // one false alarm, never a death.
    nvmf::NvmfTarget& target = cluster.target(0);
    for (uint32_t i = 0; i < kFlaps; ++i) {
      const SimTime base = static_cast<SimTime>(i) * 600'000;
      target.schedule_crash(base + 150'000, base + 350'000);
    }
    // Then one real outage spanning three probes: declared dead, comes
    // back, and (after the healer's report) converges to healthy.
    const SimTime real = static_cast<SimTime>(kFlaps) * 600'000;
    target.schedule_crash(real + 150'000, real + 450'000);

    cluster.engine().spawn(monitor.heartbeat(
        [&](fabric::NodeId n, SimTime t) {
          return cluster.target(cluster.storage_ssd_index(n)).alive(t);
        },
        /*until=*/real + 1 * kMillisecond));
    cluster.engine().run();

    EXPECT_EQ(monitor.state(node), TargetState::kHealing);
    monitor.note_healed(node);

    auto counter = [&metrics](const char* name) -> uint64_t {
      const obs::Counter* c = metrics.find_counter(name);
      return c != nullptr ? c->value() : 0;
    };
    Outcome out;
    out.transitions = monitor.transitions();
    out.false_alarms = counter("resilience.false_alarms");
    out.deaths = counter("resilience.deaths");
    out.final_state = monitor.state(node);
    return out;
  };

  const Outcome a = run_flap_scenario();
  EXPECT_EQ(a.final_state, TargetState::kHealthy);
  // Bounded: exactly one false alarm per flap — a flap does not spiral
  // into extra transitions, and only the real outage registers a death.
  EXPECT_EQ(a.false_alarms, kFlaps);
  EXPECT_EQ(a.deaths, 1u);
  // Per flap: healthy->suspect->healthy; the real outage adds
  // suspect, dead, healing, healthy.
  EXPECT_EQ(a.transitions, 2u * kFlaps + 4u);

  const Outcome b = run_flap_scenario();
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(b.final_state, TargetState::kHealthy);
}

// ---------------------------------------------------------------------------
// Balancer domain exclusion (satellite b)

TEST(BalancerExcludeTest, ValidatesAndExhaustsTyped) {
  Cluster cluster(make_spec(4, 2));
  const fabric::Topology& topo = cluster.topology();

  nvmecr_rt::BalancerRequest req;
  req.rank_nodes = {cluster.compute_nodes()[0]};
  req.storage_nodes = cluster.storage_nodes();
  req.num_ssds = 1;
  req.min_procs_per_ssd = 1;

  // Out-of-range excluded domain is an input error.
  req.exclude_domains = {topo.rack_count() + 7};
  auto r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);

  // Excluding one storage rack leaves the other.
  const fabric::RackId d0 = topo.failure_domain(cluster.storage_nodes()[0]);
  req.exclude_domains = {d0};
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  for (fabric::NodeId n : r->ssd_nodes) {
    EXPECT_NE(topo.failure_domain(n), d0);
  }

  // Excluding every storage domain is a TYPED exhaustion — kUnavailable,
  // returned immediately, never a loop.
  std::vector<fabric::RackId> all;
  for (fabric::NodeId n : cluster.storage_nodes()) {
    all.push_back(topo.failure_domain(n));
  }
  req.exclude_domains = all;
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
}

// Partner domain also dead at failover time: ensure_spare surfaces the
// typed exhaustion to the IO instead of hanging or spinning.
TEST(BalancerExcludeTest, PartnerDomainAlsoDeadSurfacesExhaustion) {
  // Two storage racks only: primary in one, the sole partner in the
  // other. Killing both leaves no eligible spare domain.
  Cluster cluster(make_spec(2, 2));
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);

  // Connect while healthy, then kill every storage domain: primary AND
  // its only partner. The write must fail typed, not hang.
  Status result = cluster.engine().run_task(
      [](Cluster& cl, ResilientSystem& s,
         HealthMonitor& m) -> sim::Task<Status> {
        auto c = co_await s.connect(0);
        NVMECR_CO_RETURN_IF_ERROR(c.status());
        for (fabric::NodeId n : cl.storage_nodes()) {
          m.track(n);
          cl.storage_ssd(cl.storage_ssd_index(n))
              .schedule_crash(cl.engine().now());
          m.note_exhausted(n);
        }
        NVMECR_CHECK(m.dead_domains().size() == 2);
        co_return co_await write_file(**c, "/doomed", 1_MiB);
      }(cluster, sys, monitor));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable)
      << result.to_string();
}

// ---------------------------------------------------------------------------
// Mid-checkpoint failover + healing (tentpole)

TEST(FailoverTest, MidCheckpointPivotThenHealRestoresPrimary) {
  Cluster cluster(make_spec(4, 4));
  obs::MetricsRegistry metrics;
  cluster.install_observer({nullptr, &metrics});
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  monitor.set_observer(cluster.observer());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42,
      cluster.observer());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);
  sys.set_observer(cluster.observer());

  const fabric::NodeId node = sys.primary_node_of(0);
  hw::NvmeSsd& ssd = cluster.storage_ssd(cluster.storage_ssd_index(node));
  const SimTime recover_at = 80 * kMillisecond;

  // Heartbeat (probes the device) + healer, both bounded.
  cluster.engine().spawn(monitor.heartbeat(
      [&cluster](fabric::NodeId n, SimTime t) {
        return !cluster.storage_ssd(cluster.storage_ssd_index(n))
                    .crashed_at(t);
      },
      /*until=*/200 * kMillisecond));
  cluster.engine().spawn(sys.healer(/*until=*/200 * kMillisecond));

  std::unique_ptr<baselines::StorageClient> client;
  cluster.engine().run_task(
      [](Cluster& c, ResilientSystem& s, hw::NvmeSsd& dev, SimTime rec,
         std::unique_ptr<baselines::StorageClient>& out) -> sim::Task<void> {
        auto conn = co_await s.connect(0);
        NVMECR_CHECK(conn.ok());
        out = std::move(*conn);
        baselines::StorageClient& cl = *out;
        // First two chunks land on the primary...
        auto fd = co_await cl.create("/mid");
        NVMECR_CHECK(fd.ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        // ...then the device dies mid-checkpoint.
        dev.schedule_crash(c.engine().now(), rec);
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.fsync(*fd)).ok());
        EXPECT_TRUE((co_await cl.close(*fd)).ok());
        // Degraded restart read works immediately (served by the spare).
        EXPECT_TRUE((co_await read_file(cl, "/mid", 4_MiB)).ok());
      }(cluster, sys, ssd, recover_at, client));

  // The checkpoint completed in degraded mode and was then healed: the
  // engine ran past recover_at (heartbeat flipped the node to healing,
  // the healer rewrote the file through the primary chain).
  EXPECT_GE(sys.failovers(), 1u);
  const resilience::DegradedEntry* e = sys.degraded_entry(0, "/mid");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete);
  EXPECT_EQ(e->bytes, 4_MiB);
  EXPECT_EQ(e->state, resilience::DegradedState::kHealed);
  EXPECT_EQ(sys.healed_bytes(), 4_MiB);
  EXPECT_EQ(monitor.state(node), TargetState::kHealthy);

  // Nothing is left degraded once the healer finished.
  EXPECT_TRUE(sys.degraded_ranks().empty());

  // Metrics flowed through the registry.
  EXPECT_EQ(metrics.find_counter("resilience.failovers")->value(),
            sys.failovers());
  EXPECT_EQ(metrics.find_counter("resilience.heal_bytes")->value(), 4_MiB);
  EXPECT_GE(metrics.find_counter("resilience.deaths")->value(), 1u);

  // After healing, a fresh read is served by the primary chain again.
  cluster.engine().run_task(
      [](std::unique_ptr<baselines::StorageClient>& cl) -> sim::Task<void> {
        EXPECT_TRUE((co_await read_file(*cl, "/mid", 4_MiB)).ok());
      }(client));
}

// Same pivot scenario, traced: the exported trace must interleave the
// health instants, the pivot marker, and nested/overlapping spans from
// the resilience and runtime layers so a failover is reconstructible
// from chrome://tracing alone.
TEST(FailoverTest, TraceCapturesPivotMarkersAndOverlappingSpans) {
  Cluster cluster(make_spec(4, 4));
  sim::TraceCollector trace;
  obs::MetricsRegistry metrics;
  obs::Observer o;
  o.trace = &trace;
  o.metrics = &metrics;
  cluster.install_observer(o);
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  monitor.set_observer(cluster.observer());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42,
      cluster.observer());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);
  sys.set_observer(cluster.observer());

  const fabric::NodeId node = sys.primary_node_of(0);
  hw::NvmeSsd& ssd = cluster.storage_ssd(cluster.storage_ssd_index(node));
  const SimTime recover_at = 80 * kMillisecond;

  cluster.engine().spawn(monitor.heartbeat(
      [&cluster](fabric::NodeId n, SimTime t) {
        return !cluster.storage_ssd(cluster.storage_ssd_index(n))
                    .crashed_at(t);
      },
      /*until=*/200 * kMillisecond));
  cluster.engine().spawn(sys.healer(/*until=*/200 * kMillisecond));

  cluster.engine().run_task(
      [](Cluster& c, ResilientSystem& s, hw::NvmeSsd& dev,
         SimTime rec) -> sim::Task<void> {
        auto conn = co_await s.connect(0);
        NVMECR_CHECK(conn.ok());
        baselines::StorageClient& cl = **conn;
        auto fd = co_await cl.create("/mid");
        NVMECR_CHECK(fd.ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        dev.schedule_crash(c.engine().now(), rec);
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.fsync(*fd)).ok());
        EXPECT_TRUE((co_await cl.close(*fd)).ok());
        EXPECT_TRUE((co_await read_file(cl, "/mid", 2_MiB)).ok());
      }(cluster, sys, ssd, recover_at));
  ASSERT_GE(sys.failovers(), 1u);

  const std::string json = trace.to_json();
  // Pivot marker and health-state instants line up on their tracks.
  EXPECT_NE(json.find("failover_start:rank0"), std::string::npos);
  EXPECT_NE(json.find("resilience/health"), std::string::npos);
  const std::string n = std::to_string(node);
  EXPECT_NE(json.find("node" + n + ":dead"), std::string::npos);
  EXPECT_NE(json.find("node" + n + ":healing"), std::string::npos);
  EXPECT_NE(json.find("node" + n + ":healthy"), std::string::npos);
  // The pivot and the later heal both appear as spans.
  EXPECT_NE(json.find("\"failover:/mid\""), std::string::npos);
  EXPECT_NE(json.find("\"heal:/mid\""), std::string::npos);

  // Structural check: locate the failover span's [ts, ts+dur) window.
  const size_t pos = json.find("\"name\":\"failover:/mid\"");
  ASSERT_NE(pos, std::string::npos);
  double fo_ts = 0.0, fo_dur = 0.0;
  ASSERT_EQ(std::sscanf(json.c_str() + json.find("\"ts\":", pos),
                        "\"ts\":%lf,\"dur\":%lf", &fo_ts, &fo_dur),
            2);
  ASSERT_GT(fo_dur, 0.0);
  // Walk every complete ("X") span and classify it against the window:
  // the spare-side create/write spans nest strictly inside the failover
  // span, and the primary-side spans that hit the dead device close
  // before the pivot — the /mid op stream straddles the window.
  size_t nested = 0;
  size_t before_pivot = 0;
  for (size_t p = json.find("\"ph\":\"X\""); p != std::string::npos;
       p = json.find("\"ph\":\"X\"", p + 1)) {
    double ts = 0.0, dur = 0.0;
    if (std::sscanf(json.c_str() + json.find("\"ts\":", p),
                    "\"ts\":%lf,\"dur\":%lf", &ts, &dur) != 2) {
      continue;
    }
    if (ts >= fo_ts && ts + dur <= fo_ts + fo_dur && dur < fo_dur) ++nested;
    if (ts + dur <= fo_ts) ++before_pivot;
  }
  EXPECT_GT(nested, 0u);
  EXPECT_GT(before_pivot, 0u);
  // The heal span reopens the same file only after the pivot window has
  // closed (the device must first recover and be declared healing).
  const size_t heal_pos = json.find("\"name\":\"heal:/mid\"");
  ASSERT_NE(heal_pos, std::string::npos);
  double heal_ts = 0.0;
  ASSERT_EQ(std::sscanf(json.c_str() + json.find("\"ts\":", heal_pos),
                        "\"ts\":%lf", &heal_ts),
            1);
  EXPECT_GT(heal_ts, fo_ts + fo_dur);
}

// The failover view plugs into the multi-level restart chain between the
// fast tier and reconstruction/PFS.
TEST(FailoverTest, FailoverViewServesDegradedReadsAndRejectsWrites) {
  Cluster cluster(make_spec(4, 4));
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);

  const fabric::NodeId node = sys.primary_node_of(0);

  std::unique_ptr<baselines::StorageClient> client;
  auto view = sys.failover_view(0);
  cluster.engine().run_task(
      [](Cluster& cl, ResilientSystem& s, fabric::NodeId n,
         baselines::StorageClient& v,
         std::unique_ptr<baselines::StorageClient>& out) -> sim::Task<void> {
        auto conn = co_await s.connect(0);
        NVMECR_CHECK(conn.ok());
        out = std::move(*conn);
        // Target dies before the first byte: straight-to-spare pivot.
        cl.storage_ssd(cl.storage_ssd_index(n))
            .schedule_crash(cl.engine().now());
        s.monitor().note_exhausted(n);
        EXPECT_TRUE((co_await write_file(*out, "/deg", 2_MiB)).ok());
        // The view serves the degraded checkpoint read-only.
        EXPECT_TRUE((co_await read_file(v, "/deg", 2_MiB)).ok());
        auto miss = co_await v.open_read("/nope");
        EXPECT_EQ(miss.status().code(), ErrorCode::kNotFound);
        auto wr = co_await v.create("/x");
        EXPECT_EQ(wr.status().code(), ErrorCode::kPermission);
      }(cluster, sys, node, *view, client));

  // Wired into the router, the chain orders fast > failover > pfs.
  nvmecr_rt::MultiLevelRouter router(*client, *client,
                                     nvmecr_rt::MultiLevelPolicy(10));
  EXPECT_FALSE(router.has_failover());
  router.set_failover(view.get());
  EXPECT_TRUE(router.has_failover());
  auto chain = router.recovery_chain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[1], view.get());
}

// ---------------------------------------------------------------------------
// Fault storm: 2 of 8 targets die mid-checkpoint under a CoMD-style run
// (acceptance). The run completes, restart reads from the fast tier (no
// PFS deployed at all), healing restores full redundancy, and the whole
// failover/metric stream is bit-identical across two runs.

struct StormOutcome {
  uint64_t failovers = 0;
  uint64_t retries = 0;
  uint64_t heal_bytes = 0;
  uint64_t transitions = 0;
  uint64_t degraded_ckpts = 0;
  std::vector<SimTime> dead_since;
  SimDuration total_time = 0;
  bool ok = false;
  bool healed = false;
};

StormOutcome run_fault_storm(uint32_t kill, SimTime kill_at,
                             SimTime recover_at) {
  StormOutcome out;
  Cluster cluster(make_spec(/*storage_nodes=*/8, /*storage_racks=*/4,
                            /*compute_nodes=*/8));
  obs::MetricsRegistry metrics;
  cluster.install_observer({nullptr, &metrics});
  Scheduler sched(cluster);

  workloads::ComdParams params;
  params.nranks = 8;
  params.procs_per_node = 1;
  params.atoms_per_rank = 8192;
  params.bytes_per_atom = 512;  // 4 MiB per rank per checkpoint
  params.io_chunk = 1_MiB;
  params.checkpoints = 3;
  params.compute_per_period = 2 * kMillisecond;
  params.keep_last = 3;  // keep everything: reads may heal late

  auto job = sched.allocate(params.nranks, params.procs_per_node, 64_MiB,
                            /*num_ssds=*/8);
  NVMECR_CHECK(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  monitor.set_observer(cluster.observer());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42,
      cluster.observer());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);

  redundancy::RedundancyOptions ropts;
  ropts.scheme = redundancy::Scheme::kPartner;
  auto dep =
      redundancy::deploy_redundancy(cluster, sched, primary, *job, ropts,
                                    config);
  NVMECR_CHECK(dep.ok());

  ResilientSystem sys(cluster, sched, *dep->system, monitor, *job, config);
  sys.set_observer(cluster.observer());

  // Kill the first `kill` primary targets mid-checkpoint; they come back
  // later and get healed.
  std::vector<fabric::NodeId> victims;
  for (uint32_t i = 0; i < kill; ++i) {
    const fabric::NodeId n = job->assignment.ssd_nodes[i];
    victims.push_back(n);
    cluster.storage_ssd(cluster.storage_ssd_index(n))
        .schedule_crash(kill_at, recover_at);
    cluster.target(cluster.storage_ssd_index(n))
        .schedule_crash(kill_at, recover_at);
  }

  const SimTime horizon = recover_at + 100 * kMillisecond;
  cluster.engine().spawn(monitor.heartbeat(
      [&cluster](fabric::NodeId n, SimTime t) {
        const uint32_t idx = cluster.storage_ssd_index(n);
        return cluster.target(idx).alive(t) &&
               !cluster.storage_ssd(idx).crashed_at(t);
      },
      horizon));
  cluster.engine().spawn(sys.healer(horizon));

  auto r = workloads::ComdDriver::run(cluster, sys, params);
  out.ok = r.ok();
  if (!r.ok()) return out;

  out.failovers = sys.failovers();
  out.heal_bytes = sys.healed_bytes();
  out.transitions = monitor.transitions();
  out.total_time = r->total_time;
  const obs::Counter* retries = metrics.find_counter("resilience.retries");
  out.retries = retries != nullptr ? retries->value() : 0;
  const obs::Counter* deg =
      metrics.find_counter("resilience.degraded_ckpts");
  out.degraded_ckpts = deg != nullptr ? deg->value() : 0;
  for (fabric::NodeId n : victims) out.dead_since.push_back(monitor.dead_since(n));

  // Full redundancy restored: nothing left degraded, victims healthy.
  out.healed = sys.degraded_ranks().empty();
  for (fabric::NodeId n : victims) {
    if (monitor.state(n) != TargetState::kHealthy) out.healed = false;
  }
  return out;
}

TEST(FaultStormTest, TwoOfEightTargetsDieAndTheRunSurvives) {
  // Kill mid-first-checkpoint (compute ~2ms, then IO), recover at 60ms.
  StormOutcome a = run_fault_storm(2, 3 * kMillisecond, 60 * kMillisecond);
  ASSERT_TRUE(a.ok) << "checkpoint/restart must survive the storm";
  EXPECT_GE(a.failovers, 1u);
  EXPECT_GE(a.degraded_ckpts, 1u);
  for (SimTime t : a.dead_since) EXPECT_GT(t, 0);
  // Healing restored full redundancy before the horizon.
  EXPECT_TRUE(a.healed);
  EXPECT_GT(a.heal_bytes, 0u);

  // Determinism: the same storm produces the identical failover/metric
  // stream, tick for tick.
  StormOutcome b = run_fault_storm(2, 3 * kMillisecond, 60 * kMillisecond);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.heal_bytes, b.heal_bytes);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.degraded_ckpts, b.degraded_ckpts);
  EXPECT_EQ(a.dead_since, b.dead_since);
  EXPECT_EQ(a.total_time, b.total_time);
}

// ---------------------------------------------------------------------------
// Offload interaction: a target dying mid-checkpoint revokes the rank's
// offload grant — the stages fall back to host-side compute, the
// degraded manifest records it, and the checkpoint still completes
// through the resilience layer's failover.

TEST(OffloadResilienceTest, TargetDeathMidCheckpointFallsBackToHost) {
  Cluster cluster(make_spec(4, 4));
  Scheduler sched(cluster);
  auto job = sched.allocate(1, 1, 64_MiB, 1);
  ASSERT_TRUE(job.ok());

  HealthMonitor monitor(cluster.engine(), cluster.topology());
  RuntimeConfig config;
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  ResilientSystem sys(cluster, sched, primary, monitor, *job, config);

  offload::OffloadOptions oopts;
  oopts.stages = nvmf::kOffloadDigest;
  offload::OffloadSystem off(cluster, sys, *job, oopts);

  const fabric::NodeId node = sys.primary_node_of(0);
  const uint32_t idx = cluster.storage_ssd_index(node);

  cluster.engine().run_task(
      [](Cluster& c, offload::OffloadSystem& o, uint32_t ssd_idx,
         fabric::NodeId n) -> sim::Task<void> {
        auto conn = co_await o.connect(0);
        NVMECR_CHECK(conn.ok());
        baselines::StorageClient& cl = **conn;
        EXPECT_EQ(o.granted(0), nvmf::kOffloadDigest);
        auto fd = co_await cl.create("/mid");
        NVMECR_CHECK(fd.ok());
        // First chunks digest on the target...
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        // ...then the whole storage node dies mid-checkpoint: the SSD
        // (so the resilient device pivots to a spare) and the target
        // daemon (so the offload grant is revoked).
        c.storage_ssd(ssd_idx).schedule_crash(c.engine().now());
        c.target(ssd_idx).schedule_crash(c.engine().now());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.write(*fd, 1_MiB)).ok());
        EXPECT_TRUE((co_await cl.fsync(*fd)).ok());
        EXPECT_TRUE((co_await cl.close(*fd)).ok());
        EXPECT_TRUE((co_await read_file(cl, "/mid", 4_MiB)).ok());
        (void)n;
      }(cluster, off, idx, node));

  // The checkpoint survived via failover AND the offload session fell
  // back cleanly: grant revoked, fallback logged, host CPU burned for
  // the post-death chunks.
  EXPECT_GE(sys.failovers(), 1u);
  EXPECT_EQ(off.granted(0), 0u);
  EXPECT_EQ(off.fallbacks(), 1u);
  ASSERT_FALSE(off.fallback_log().empty());
  EXPECT_NE(off.fallback_log().back().find("fell back"), std::string::npos);
  EXPECT_GT(off.host_compute_ns(), 0u);
  // The target only digested the two pre-death chunks.
  EXPECT_GE(cluster.target(idx).compute_busy_ns(), 1u);
}

}  // namespace
}  // namespace nvmecr
