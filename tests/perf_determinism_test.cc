// Determinism regression tests for the two-tier scheduler (DESIGN.md
// §11): the now-ring is a pure performance optimization and must never
// change *what* the simulation computes. These tests pin that down at
// full-system scale — a fig07-style CoMD run over the real NVMe-CR
// stack — by fingerprinting the complete dispatch schedule.
#include <cstdint>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "offload/pipeline.h"
#include "simcore/profile.h"
#include "workloads/apps.h"
#include "workloads/comd.h"

namespace nvmecr {
namespace {

using bench::default_runtime_config;
using bench::partition_for;
using bench::weak_scaling_params;
using nvmecr_rt::Cluster;
using nvmecr_rt::NvmecrSystem;
using nvmecr_rt::Scheduler;
using workloads::ComdDriver;
using workloads::ComdParams;

/// Order-sensitive digest of the full (time, seq) dispatch stream plus
/// the run's observable outcome. Any reordering — even a swap of two
/// same-time events — changes `hash`.
struct RunFingerprint {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  uint64_t events = 0;
  SimTime final_time = 0;
  SimDuration total_time = 0;
  double efficiency = 0.0;

  bool operator==(const RunFingerprint&) const = default;
};

// Golden values for run_fingerprinted(true, 28, 2); see
// GoldenScheduleFingerprint for the update procedure.
constexpr uint64_t kGoldenHash = 16411536983975935818ull;
constexpr uint64_t kGoldenEvents = 71870;
constexpr SimTime kGoldenFinalTime = 7434117816;

enum class OffloadMode { kNone, kPassthrough, kAllStages };

RunFingerprint run_fingerprinted(bool ring_enabled, uint32_t nranks,
                                 uint32_t checkpoints,
                                 bool profiled = false,
                                 OffloadMode offload = OffloadMode::kNone,
                                 bool calendar_enabled = true,
                                 bool frame_pooling = true) {
  ComdParams params = weak_scaling_params(nranks);
  params.checkpoints = checkpoints;

  // The frame pool is process-wide; restore the default on every exit so
  // a baseline arm can't leak its setting into the next test.
  sim::set_frame_pooling(frame_pooling);
  struct PoolingGuard {
    ~PoolingGuard() { sim::set_frame_pooling(true); }
  } pooling_guard;

  Cluster cluster;
  cluster.engine().set_now_ring_enabled(ring_enabled);
  cluster.engine().set_calendar_enabled(calendar_enabled);
  // Wall-clock profiling must be invisible to the schedule: install the
  // full profiler pair when asked, before any subsystem spins up.
  sim::DispatchProfiler prof;
  obs::EpochProfiler epoch;
  if (profiled) {
    obs::Observer o;
    o.dispatch = &prof;
    o.epoch = &epoch;
    cluster.install_observer(o);
  }
  RunFingerprint fp;
  SimTime last_time = 0;
  uint64_t last_seq = 0;
  bool first = true;
  cluster.engine().set_dispatch_probe([&](SimTime t, uint64_t seq) {
    // The dispatch order must be monotone in (time, seq) regardless of
    // which tier an event came from.
    EXPECT_TRUE(first || t > last_time || (t == last_time && seq > last_seq))
        << "dispatch out of order at t=" << t << " seq=" << seq;
    first = false;
    last_time = t;
    last_seq = seq;
    fp.hash = mix64(fp.hash ^ mix64(static_cast<uint64_t>(t)));
    fp.hash = mix64(fp.hash ^ seq);
    ++fp.events;
  });

  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), /*num_ssds=*/4);
  NVMECR_CHECK(job.ok());
  NvmecrSystem system(cluster, *job, default_runtime_config());
  std::optional<offload::OffloadSystem> off;
  if (offload != OffloadMode::kNone) {
    offload::OffloadOptions opts;
    if (offload == OffloadMode::kPassthrough) {
      opts.stages = 0;
      opts.digest_checks = false;
    } else {
      opts.stages = nvmf::kOffloadAll;
      opts.codec = *offload::find_codec("lz4-class");
    }
    off.emplace(cluster, system, *job, opts);
  }
  baselines::StorageSystem& run_sys =
      off ? static_cast<baselines::StorageSystem&>(*off)
          : static_cast<baselines::StorageSystem&>(system);
  auto m = ComdDriver::run(cluster, run_sys, params);
  NVMECR_CHECK(m.ok());

  fp.final_time = cluster.engine().now();
  fp.total_time = m->total_time;
  fp.efficiency = m->checkpoint_efficiency();
  return fp;
}

TEST(PerfDeterminismTest, RepeatedRunsAreBitIdentical) {
  const RunFingerprint a = run_fingerprinted(true, 28, 2);
  const RunFingerprint b = run_fingerprinted(true, 28, 2);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(PerfDeterminismTest, RingOnAndRingOffProduceIdenticalSchedules) {
  // The tentpole invariant: the now-ring changes only *where* ready
  // events wait, never the (time, seq) dispatch order — so the full
  // event trace, final clock, and job metrics are all bit-identical.
  const RunFingerprint on = run_fingerprinted(true, 28, 2);
  const RunFingerprint off = run_fingerprinted(false, 28, 2);
  EXPECT_EQ(on, off);
}

TEST(PerfDeterminismTest, RingOnAndRingOffAgreeAtTwoNodes) {
  const RunFingerprint on = run_fingerprinted(true, 56, 2);
  const RunFingerprint off = run_fingerprinted(false, 56, 2);
  EXPECT_EQ(on, off);
}

TEST(PerfDeterminismTest, CalendarOnAndOffProduceIdenticalSchedules) {
  // Same invariant for the calendar tier (DESIGN.md §11): bucketed timer
  // maturation batches *host* work; the (time, seq) dispatch stream must
  // not move by a single pair when the tier is bypassed entirely.
  const RunFingerprint on = run_fingerprinted(true, 28, 2);
  const RunFingerprint off =
      run_fingerprinted(true, 28, 2, /*profiled=*/false, OffloadMode::kNone,
                        /*calendar_enabled=*/false);
  EXPECT_EQ(on, off);
}

TEST(PerfDeterminismTest, CalendarOnAndOffAgreeAtTwoNodes) {
  const RunFingerprint on = run_fingerprinted(true, 56, 2);
  const RunFingerprint off =
      run_fingerprinted(true, 56, 2, /*profiled=*/false, OffloadMode::kNone,
                        /*calendar_enabled=*/false);
  EXPECT_EQ(on, off);
}

TEST(PerfDeterminismTest, FramePoolingDoesNotPerturbSchedule) {
  // Pooling recycles frame storage; it can change host speed only. A run
  // with the pool bypassed (every frame through the global allocator)
  // must produce the identical fingerprint.
  const RunFingerprint pooled = run_fingerprinted(true, 28, 2);
  const RunFingerprint unpooled =
      run_fingerprinted(true, 28, 2, /*profiled=*/false, OffloadMode::kNone,
                        /*calendar_enabled=*/true, /*frame_pooling=*/false);
  EXPECT_EQ(pooled, unpooled);
}

TEST(PerfDeterminismTest, RegistryPresetsReproduceLegacyIoProfiles) {
  // The ProxyAppPreset table moved into the application registry
  // (workloads/apps.h) when the AppDriver restart harness landed. Pin
  // the CoMD profile the registry hands out to the exact numbers the
  // legacy params_from_preset produced — the AppDriver refactor left
  // ComdDriver and the golden schedule fingerprint below bit-identical,
  // and this keeps the registry from drifting under it.
  const workloads::AppSpec* comd = workloads::find_app("CoMD");
  ASSERT_NE(comd, nullptr);
  const ComdParams p = workloads::io_params_for(*comd, 224);
  EXPECT_EQ(p.nranks, 224u);
  EXPECT_EQ(p.procs_per_node, 28u);
  EXPECT_EQ(p.bytes_per_atom, 512u);
  EXPECT_EQ(p.atoms_per_rank, (156ull << 20) / 512u);
  EXPECT_EQ(p.io_chunk, 4ull << 20);
  EXPECT_EQ(p.compute_per_period, 2900 * kMillisecond);
  EXPECT_DOUBLE_EQ(p.compute_jitter, 0.03);
  EXPECT_EQ(p.checkpoints, 5u);
}

TEST(PerfDeterminismTest, GoldenScheduleFingerprint) {
  // Golden (time, seq) trace over a fig07-style run, pinned so an
  // unintended scheduling change anywhere in the stack (engine, sync
  // primitives, devices, fabric) fails loudly. If a change to the
  // simulation is *intentional*, re-run this test and update the
  // constants from the failure output.
  const RunFingerprint fp = run_fingerprinted(true, 28, 2);
  EXPECT_EQ(fp.hash, kGoldenHash) << "events=" << fp.events
                                  << " final_time=" << fp.final_time;
  EXPECT_EQ(fp.events, kGoldenEvents);
  EXPECT_EQ(fp.final_time, kGoldenFinalTime);
}

TEST(PerfDeterminismTest, ProfilingDoesNotPerturbSchedule) {
  // Arming the dispatch profiler + epoch analyzer reads host clocks into
  // profiler-private buckets only. The golden fingerprint must not move
  // by a single (time, seq) pair.
  const RunFingerprint fp =
      run_fingerprinted(true, 28, 2, /*profiled=*/true);
  EXPECT_EQ(fp.hash, kGoldenHash);
  EXPECT_EQ(fp.events, kGoldenEvents);
  EXPECT_EQ(fp.final_time, kGoldenFinalTime);
}

TEST(PerfDeterminismTest, DisabledOffloadWrapperKeepsGoldenFingerprint) {
  // Routing I/O through OffloadSystem with no stages granted and no
  // codec must be a pure pass-through: not one (time, seq) pair of the
  // golden schedule may move.
  const RunFingerprint fp = run_fingerprinted(
      true, 28, 2, /*profiled=*/false, OffloadMode::kPassthrough);
  EXPECT_EQ(fp.hash, kGoldenHash) << "events=" << fp.events
                                  << " final_time=" << fp.final_time;
  EXPECT_EQ(fp.events, kGoldenEvents);
  EXPECT_EQ(fp.final_time, kGoldenFinalTime);
}

// Golden values for the fixed offload-enabled config (all four stages
// granted, lz4-class codec) over the same fig07-style run. Update like
// kGoldenHash when a schedule change is intentional.
constexpr uint64_t kOffloadGoldenHash = 10412633153962282906ull;
constexpr uint64_t kOffloadGoldenEvents = 58626;
constexpr SimTime kOffloadGoldenFinalTime = 6891699442;

TEST(PerfDeterminismTest, OffloadEnabledScheduleIsPinned) {
  // The offload pipeline (negotiation round trips, target compute
  // reservations, compressed wire transfers) is itself deterministic:
  // two runs agree bit-for-bit and match the pinned constants.
  const RunFingerprint a = run_fingerprinted(
      true, 28, 2, /*profiled=*/false, OffloadMode::kAllStages);
  const RunFingerprint b = run_fingerprinted(
      true, 28, 2, /*profiled=*/false, OffloadMode::kAllStages);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.hash, kGoldenHash);  // the grant genuinely changes the run
  EXPECT_EQ(a.hash, kOffloadGoldenHash) << "events=" << a.events
                                        << " final_time=" << a.final_time;
  EXPECT_EQ(a.events, kOffloadGoldenEvents);
  EXPECT_EQ(a.final_time, kOffloadGoldenFinalTime);
}

}  // namespace
}  // namespace nvmecr
