// Tests for the hardware layer: payload store (interval map semantics),
// the simulated NVMe SSD (namespaces, queues, timing model), RamDevice,
// and PartitionView.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "hw/block_device.h"
#include "hw/nvme_ssd.h"
#include "hw/payload_store.h"
#include "hw/ram_device.h"
#include "simcore/engine.h"
#include "simcore/event.h"

namespace nvmecr::hw {
namespace {

using namespace nvmecr::literals;

std::vector<std::byte> make_bytes(size_t n, unsigned char fill) {
  return std::vector<std::byte>(n, std::byte{fill});
}

// ---------------------------------------------------------------------
// PayloadStore
// ---------------------------------------------------------------------

TEST(PayloadStoreTest, BytesRoundtrip) {
  PayloadStore store(4096);
  auto data = make_bytes(100, 0xab);
  store.write_bytes(1000, data);
  std::vector<std::byte> out(100);
  ASSERT_TRUE(store.read_bytes(1000, out).ok());
  EXPECT_EQ(out, data);
}

TEST(PayloadStoreTest, UnwrittenReadsAsZero) {
  PayloadStore store(4096);
  std::vector<std::byte> out(64, std::byte{0xff});
  ASSERT_TRUE(store.read_bytes(5000, out).ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(PayloadStoreTest, OverwriteSplitsOldExtent) {
  PayloadStore store(4096);
  store.write_bytes(0, make_bytes(300, 0x11));
  store.write_bytes(100, make_bytes(100, 0x22));
  std::vector<std::byte> out(300);
  ASSERT_TRUE(store.read_bytes(0, out).ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], std::byte{0x11}) << i;
  for (int i = 100; i < 200; ++i) EXPECT_EQ(out[i], std::byte{0x22}) << i;
  for (int i = 200; i < 300; ++i) EXPECT_EQ(out[i], std::byte{0x11}) << i;
}

TEST(PayloadStoreTest, OverwriteSpanningMultipleExtents) {
  PayloadStore store(4096);
  store.write_bytes(0, make_bytes(100, 0x01));
  store.write_bytes(100, make_bytes(100, 0x02));
  store.write_bytes(200, make_bytes(100, 0x03));
  store.write_bytes(50, make_bytes(200, 0x04));  // spans all three
  std::vector<std::byte> out(300);
  ASSERT_TRUE(store.read_bytes(0, out).ok());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], std::byte{0x01});
  for (int i = 50; i < 250; ++i) EXPECT_EQ(out[i], std::byte{0x04});
  for (int i = 250; i < 300; ++i) EXPECT_EQ(out[i], std::byte{0x03});
}

TEST(PayloadStoreTest, PatternRequiresAlignment) {
  PayloadStore store(4096);
  EXPECT_EQ(store.write_pattern(1, 4096, 7).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.write_pattern(4096, 100, 7).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(store.write_pattern(4096, 8192, 7).ok());
}

TEST(PayloadStoreTest, PatternTagMatchesExpected) {
  PayloadStore store(4096);
  ASSERT_TRUE(store.write_pattern(8192, 16384, 99).ok());
  auto tag = store.read_combined_tag(8192, 16384);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, PayloadStore::expected_tag(99, 8192, 16384, 4096));
}

TEST(PayloadStoreTest, PartialPatternReadMatchesSubrange) {
  PayloadStore store(4096);
  ASSERT_TRUE(store.write_pattern(0, 10 * 4096, 5).ok());
  auto tag = store.read_combined_tag(2 * 4096, 3 * 4096);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, PayloadStore::expected_tag(5, 2 * 4096, 3 * 4096, 4096));
}

TEST(PayloadStoreTest, SequentialPatternWritesMerge) {
  PayloadStore store(4096);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.write_pattern(i * 32_KiB, 32_KiB, 42).ok());
  }
  EXPECT_EQ(store.extent_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), 100 * 32_KiB);
}

TEST(PayloadStoreTest, DifferentSeedsDoNotMerge) {
  PayloadStore store(4096);
  ASSERT_TRUE(store.write_pattern(0, 4096, 1).ok());
  ASSERT_TRUE(store.write_pattern(4096, 4096, 2).ok());
  EXPECT_EQ(store.extent_count(), 2u);
}

TEST(PayloadStoreTest, ReadBytesOverPatternIsCorruption) {
  PayloadStore store(4096);
  ASSERT_TRUE(store.write_pattern(0, 4096, 1).ok());
  std::vector<std::byte> out(10);
  EXPECT_EQ(store.read_bytes(100, out).code(), ErrorCode::kCorruption);
}

TEST(PayloadStoreTest, PatternOverwriteChangesTag) {
  PayloadStore store(4096);
  ASSERT_TRUE(store.write_pattern(0, 8 * 4096, 1).ok());
  ASSERT_TRUE(store.write_pattern(2 * 4096, 4096, 2).ok());
  auto tag = store.read_combined_tag(0, 8 * 4096);
  ASSERT_TRUE(tag.ok());
  uint64_t expect = 0;
  for (uint64_t b = 0; b < 8; ++b) {
    expect += PayloadStore::block_tag(b == 2 ? 2 : 1, b);
  }
  EXPECT_EQ(*tag, expect);
}

// Property test: random interleaved byte writes against a flat reference
// array must read back identically, regardless of extent splitting.
TEST(PayloadStorePropertyTest, RandomWritesMatchReferenceModel) {
  constexpr size_t kSize = 1 << 16;
  PayloadStore store(4096);
  std::vector<std::byte> reference(kSize, std::byte{0});
  Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    const uint64_t off = rng.uniform(kSize - 1);
    const uint64_t len = 1 + rng.uniform(std::min<uint64_t>(kSize - off, 700) - 1 + 1);
    const auto fill = static_cast<unsigned char>(rng.uniform(256));
    store.write_bytes(off, make_bytes(len, fill));
    std::memset(reference.data() + off, fill, len);
  }
  std::vector<std::byte> out(kSize);
  ASSERT_TRUE(store.read_bytes(0, out).ok());
  EXPECT_EQ(out, reference);
}

// Property test: random aligned pattern writes; combined tag over the
// whole range must equal the sum over a per-block reference model.
TEST(PayloadStorePropertyTest, RandomPatternsMatchBlockModel) {
  constexpr uint32_t kBs = 4096;
  constexpr uint64_t kBlocks = 64;
  PayloadStore store(kBs);
  std::vector<uint64_t> ref_seed(kBlocks, 0);  // 0 = unwritten
  Rng rng(77);
  for (int iter = 0; iter < 300; ++iter) {
    const uint64_t b0 = rng.uniform(kBlocks);
    const uint64_t nb = 1 + rng.uniform(kBlocks - b0);
    const uint64_t seed = 1 + rng.uniform(5);
    ASSERT_TRUE(store.write_pattern(b0 * kBs, nb * kBs, seed).ok());
    for (uint64_t b = b0; b < b0 + nb; ++b) ref_seed[b] = seed;
  }
  auto tag = store.read_combined_tag(0, kBlocks * kBs);
  ASSERT_TRUE(tag.ok());
  uint64_t expect = 0;
  for (uint64_t b = 0; b < kBlocks; ++b) {
    if (ref_seed[b] != 0) expect += PayloadStore::block_tag(ref_seed[b], b);
  }
  EXPECT_EQ(*tag, expect);
}

// Fragmentation stress: random pattern/byte overwrite churn across an
// aligned block space, interleaved with tag reads (exercising the
// whole-extent tag cache and its invalidation), validating
// bytes_stored() and combined tags against a naive per-block reference
// at every step.
TEST(PayloadStorePropertyTest, FragmentationChurnMatchesNaiveReference) {
  constexpr uint32_t kBs = 4096;
  constexpr uint64_t kBlocks = 256;
  PayloadStore store(kBs);
  // Per-block reference: 0 = unwritten, positive = pattern seed,
  // negative = byte block filled with -(value).
  std::vector<int64_t> ref(kBlocks, 0);
  Rng rng(20260807);

  auto ref_block_tag = [&](uint64_t b) -> uint64_t {
    if (ref[b] == 0) return 0;
    if (ref[b] > 0) {
      return PayloadStore::block_tag(static_cast<uint64_t>(ref[b]), b);
    }
    const auto fill = static_cast<unsigned char>(-ref[b]);
    const std::vector<std::byte> content = make_bytes(kBs, fill);
    return fnv1a(content.data(), content.size());
  };

  for (int iter = 0; iter < 2000; ++iter) {
    const uint64_t b0 = rng.uniform(kBlocks);
    const uint64_t nb = 1 + rng.uniform(kBlocks - b0);
    const uint64_t op = rng.uniform(10);
    if (op < 6) {
      const int64_t seed = 1 + static_cast<int64_t>(rng.uniform(4));
      ASSERT_TRUE(store.write_pattern(b0 * kBs, nb * kBs, seed).ok());
      for (uint64_t b = b0; b < b0 + nb; ++b) ref[b] = seed;
    } else if (op < 9) {
      const auto fill = static_cast<unsigned char>(1 + rng.uniform(200));
      store.write_bytes(b0 * kBs, make_bytes(nb * kBs, fill));
      for (uint64_t b = b0; b < b0 + nb; ++b) ref[b] = -int64_t{fill};
    } else {
      uint64_t expect = 0;
      for (uint64_t b = b0; b < b0 + nb; ++b) expect += ref_block_tag(b);
      auto tag = store.read_combined_tag(b0 * kBs, nb * kBs);
      ASSERT_TRUE(tag.ok());
      ASSERT_EQ(*tag, expect) << "iter " << iter;
    }
    uint64_t written_blocks = 0;
    for (uint64_t b = 0; b < kBlocks; ++b) written_blocks += ref[b] != 0;
    ASSERT_EQ(store.bytes_stored(), written_blocks * kBs) << "iter " << iter;
    ASSERT_LE(store.extent_count(), kBlocks);
  }
  // Final whole-range sweep: cold pass fills every extent's cache, warm
  // pass must serve every extent from it with an identical result.
  uint64_t expect = 0;
  for (uint64_t b = 0; b < kBlocks; ++b) expect += ref_block_tag(b);
  auto cold = store.read_combined_tag(0, kBlocks * kBs);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(*cold, expect);
  const uint64_t hits_before = store.tag_cache_hits();
  auto warm = store.read_combined_tag(0, kBlocks * kBs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, *cold);
  EXPECT_EQ(store.tag_cache_hits() - hits_before, store.extent_count());
}

TEST(PayloadStoreTest, TagCacheHitsAndInvalidation) {
  constexpr uint32_t kBs = 4096;
  PayloadStore store(kBs);
  ASSERT_TRUE(store.write_pattern(0, 64 * kBs, 9).ok());
  ASSERT_EQ(store.extent_count(), 1u);

  auto t1 = store.read_combined_tag(0, 64 * kBs);  // fills the cache
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(store.tag_cache_hits(), 0u);
  auto t2 = store.read_combined_tag(0, 64 * kBs);  // served from cache
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(store.tag_cache_hits(), 1u);
  EXPECT_EQ(*t1, *t2);

  // Partial reads bypass the cache but stay correct.
  auto part = store.read_combined_tag(4 * kBs, 8 * kBs);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(*part, PayloadStore::expected_tag(9, 4 * kBs, 8 * kBs, kBs));
  EXPECT_EQ(store.tag_cache_hits(), 1u);

  // Overwriting the middle splits the extent and invalidates caches; the
  // recomputed tag must reflect the new content.
  ASSERT_TRUE(store.write_pattern(16 * kBs, 4 * kBs, 11).ok());
  auto t3 = store.read_combined_tag(0, 64 * kBs);
  ASSERT_TRUE(t3.ok());
  uint64_t expect = 0;
  for (uint64_t b = 0; b < 64; ++b) {
    expect += PayloadStore::block_tag(b >= 16 && b < 20 ? 11 : 9, b);
  }
  EXPECT_EQ(*t3, expect);

  // Appending with the same seed extends the last extent in place and
  // must invalidate its cached tag too.
  auto whole1 = store.read_combined_tag(20 * kBs, 44 * kBs);
  ASSERT_TRUE(whole1.ok());
  ASSERT_TRUE(store.write_pattern(64 * kBs, 4 * kBs, 9).ok());
  auto tail = store.read_combined_tag(20 * kBs, 48 * kBs);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, PayloadStore::expected_tag(9, 20 * kBs, 48 * kBs, kBs));
}

TEST(PayloadStoreTest, AppendFastPathKeepsMergeAndAccounting) {
  constexpr uint32_t kBs = 4096;
  PayloadStore store(kBs);
  // Sequential same-seed appends collapse into one extent (the carve-free
  // fast path must preserve merging).
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.write_pattern(i * 4 * kBs, 4 * kBs, 3).ok());
  }
  EXPECT_EQ(store.extent_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), 400ull * kBs);
  // Append past a gap: no merge, still exact accounting.
  ASSERT_TRUE(store.write_pattern(1000 * kBs, 4 * kBs, 3).ok());
  EXPECT_EQ(store.extent_count(), 2u);
  EXPECT_EQ(store.bytes_stored(), 404ull * kBs);
  auto tag = store.read_combined_tag(0, 400 * kBs);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, PayloadStore::expected_tag(3, 0, 400 * kBs, kBs));
}

// ---------------------------------------------------------------------
// NvmeSsd
// ---------------------------------------------------------------------

SsdSpec small_spec() {
  SsdSpec spec;
  spec.capacity = 1_GiB;
  return spec;
}

TEST(NvmeSsdTest, NamespaceLifecycle) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  auto ns1 = ssd.create_namespace(100_MiB);
  ASSERT_TRUE(ns1.ok());
  auto ns2 = ssd.create_namespace(200_MiB);
  ASSERT_TRUE(ns2.ok());
  EXPECT_NE(*ns1, *ns2);
  EXPECT_EQ(ssd.namespace_count(), 2u);
  EXPECT_EQ(*ssd.namespace_size(*ns1), 100_MiB);
  EXPECT_TRUE(ssd.delete_namespace(*ns2).ok());
  EXPECT_EQ(ssd.namespace_count(), 1u);
  EXPECT_EQ(ssd.delete_namespace(999).code(), ErrorCode::kNotFound);
}

TEST(NvmeSsdTest, NamespaceCapacityEnforced) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  EXPECT_TRUE(ssd.create_namespace(900_MiB).ok());
  EXPECT_EQ(ssd.create_namespace(900_MiB).status().code(),
            ErrorCode::kNoSpace);
}

TEST(NvmeSsdTest, QueueBudgetEnforced) {
  sim::Engine eng;
  SsdSpec spec = small_spec();
  spec.max_queues = 2;
  NvmeSsd ssd(eng, spec);
  auto q0 = ssd.alloc_queue();
  auto q1 = ssd.alloc_queue();
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(ssd.alloc_queue().status().code(), ErrorCode::kUnavailable);
  ssd.free_queue(*q0);
  EXPECT_TRUE(ssd.alloc_queue().ok());
}

TEST(NvmeSsdTest, WriteReadBytesRoundtrip) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t nsid = *ssd.create_namespace(10_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  eng.run_task([](BlockDevice& d) -> sim::Task<void> {
    auto data = make_bytes(8000, 0x5a);
    EXPECT_TRUE((co_await d.write(4096, data)).ok());
    std::vector<std::byte> out(8000);
    EXPECT_TRUE((co_await d.read(4096, out)).ok());
    EXPECT_EQ(out, data);
  }(*dev));
}

TEST(NvmeSsdTest, IoBeyondNamespaceRejected) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t nsid = *ssd.create_namespace(1_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  eng.run_task([](BlockDevice& d) -> sim::Task<void> {
    auto data = make_bytes(4096, 1);
    Status s = co_await d.write(1_MiB - 1000, data);
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  }(*dev));
}

TEST(NvmeSsdTest, SmallWriteLatencyDominatedByFixedCosts) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t nsid = *ssd.create_namespace(10_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  eng.run_task([](sim::Engine& e, BlockDevice& d) -> sim::Task<void> {
    auto data = make_bytes(4096, 1);
    co_await d.write(0, data);
    // controller (2us) + cmd latency (10us) + ram transfer (~0.5us):
    // must be well under one channel-flash transfer of 4 KiB (13us) plus
    // slack, and at least the fixed 12us.
    EXPECT_GE(e.now(), 12_us);
    EXPECT_LE(e.now(), 16_us);
  }(eng, *dev));
}

TEST(NvmeSsdTest, SustainedWriteHitsAggregateBandwidth) {
  sim::Engine eng;
  SsdSpec spec = small_spec();
  spec.device_ram = 16_MiB;  // small so the flash rate dominates
  NvmeSsd ssd(eng, spec);
  const uint32_t nsid = *ssd.create_namespace(900_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  constexpr uint64_t kTotal = 512_MiB;
  eng.run_task([](BlockDevice& d) -> sim::Task<void> {
    for (uint64_t off = 0; off < kTotal; off += 1_MiB) {
      EXPECT_TRUE((co_await d.write_tagged(off, 1_MiB, 3)).ok());
    }
    co_await d.flush();
  }(*dev));
  const double gbps = bandwidth_bps(kTotal, eng.now());
  // Expect close to the 2.2 GB/s spec (within 10%: command overheads).
  EXPECT_GT(gbps, 0.9 * 2.2e9);
  EXPECT_LT(gbps, 1.05 * 2.2e9);
}

TEST(NvmeSsdTest, DeviceRamAbsorbsBurstsBelowCapacity) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());  // 256 MiB device RAM
  const uint32_t nsid = *ssd.create_namespace(900_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  // A 64 MiB burst fits in RAM: acknowledged near RAM speed (8 GB/s),
  // much faster than flash (2.2 GB/s).
  eng.run_task([](BlockDevice& d) -> sim::Task<void> {
    for (uint64_t off = 0; off < 64_MiB; off += 4_MiB) {
      EXPECT_TRUE((co_await d.write_tagged(off, 4_MiB, 1)).ok());
    }
  }(*dev));
  const double ack_time = to_seconds(eng.now());
  EXPECT_LT(ack_time, static_cast<double>(64_MiB) / 2.2e9 * 0.7);
}

TEST(NvmeSsdTest, FlushWaitsForFlashDrain) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t nsid = *ssd.create_namespace(900_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  eng.run_task([](sim::Engine& e, BlockDevice& d) -> sim::Task<void> {
    co_await d.write_tagged(0, 64_MiB, 1);  // acked at RAM speed
    const SimTime acked = e.now();
    co_await d.flush();  // waits for flash drain at 2.2 GB/s
    EXPECT_GT(e.now() - acked, transfer_time(64_MiB, 2200_MBps) / 2);
  }(eng, *dev));
}

TEST(NvmeSsdTest, HugeblockStripingBeatsSingleBlockIo) {
  // Writing 1 MiB as 32 KiB commands (striped over all channels) must be
  // far faster than as 4 KiB commands (single channel each + per-command
  // overheads) — the §III-E hugeblock claim.
  auto run = [](uint64_t io_size) {
    sim::Engine eng;
    SsdSpec spec;
    spec.capacity = 1_GiB;
    spec.device_ram = 0;  // isolate the flash path
    NvmeSsd ssd(eng, spec);
    const uint32_t nsid = *ssd.create_namespace(16_MiB);
    const uint32_t q = *ssd.alloc_queue();
    auto dev = ssd.open_queue(nsid, q);
    eng.run_task([](BlockDevice& d, uint64_t sz) -> sim::Task<void> {
      for (uint64_t off = 0; off < 1_MiB; off += sz) {
        EXPECT_TRUE((co_await d.write_tagged(off, sz, 1)).ok());
      }
    }(*dev, io_size));
    return eng.now();
  };
  const SimTime t4k = run(4_KiB);
  const SimTime t32k = run(32_KiB);
  EXPECT_LT(t32k, t4k / 2);
}

TEST(NvmeSsdTest, InOrderCompletionWithinQueue) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t nsid = *ssd.create_namespace(100_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto dev = ssd.open_queue(nsid, q);
  std::vector<int> completion_order;
  // A big write then a tiny write into the same queue: the tiny one must
  // not complete first.
  sim::JoinCounter join(eng);
  join.spawn([](BlockDevice& d, std::vector<int>& order) -> sim::Task<void> {
    co_await d.write_tagged(0, 16_MiB, 1);
    order.push_back(0);
  }(*dev, completion_order));
  join.spawn([](BlockDevice& d, std::vector<int>& order) -> sim::Task<void> {
    auto data = make_bytes(512, 2);
    co_await d.write(32_MiB, data);
    order.push_back(1);
  }(*dev, completion_order));
  eng.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1}));
}

TEST(NvmeSsdTest, SeparateQueuesAvoidInOrderChaining) {
  // A small write behind a big write completes much earlier on its own
  // hardware queue than when chained in-order on the same queue — the
  // reason NVMe-CR gives every microfs instance a dedicated queue
  // (Principle 3).
  auto run = [](bool separate_queue) {
    sim::Engine eng;
    NvmeSsd ssd(eng, SsdSpec{.capacity = 1_GiB});
    const uint32_t nsid = *ssd.create_namespace(100_MiB);
    const uint32_t q0 = *ssd.alloc_queue();
    const uint32_t q1 = separate_queue ? *ssd.alloc_queue() : q0;
    auto dev0 = ssd.open_queue(nsid, q0);
    auto dev1 = ssd.open_queue(nsid, q1);
    SimTime small_done = 0;
    sim::JoinCounter join(eng);
    join.spawn([](BlockDevice& d) -> sim::Task<void> {
      co_await d.write_tagged(0, 64_MiB, 1);
    }(*dev0));
    join.spawn([](sim::Engine& e, BlockDevice& d, SimTime& t) -> sim::Task<void> {
      co_await d.write_tagged(80_MiB, 64_KiB, 2);
      t = e.now();
    }(eng, *dev1, small_done));
    eng.run();
    return small_done;
  };
  const SimTime chained = run(false);
  const SimTime independent = run(true);
  EXPECT_LT(independent, chained / 4);
}

TEST(NvmeSsdTest, CountersAndLoadAccounting) {
  sim::Engine eng;
  NvmeSsd ssd(eng, small_spec());
  const uint32_t ns1 = *ssd.create_namespace(10_MiB);
  const uint32_t ns2 = *ssd.create_namespace(10_MiB);
  const uint32_t q = *ssd.alloc_queue();
  auto d1 = ssd.open_queue(ns1, q);
  auto d2 = ssd.open_queue(ns2, q);
  eng.run_task([](BlockDevice& a, BlockDevice& b) -> sim::Task<void> {
    co_await a.write_tagged(0, 64_KiB, 1);
    co_await b.write_tagged(0, 128_KiB, 1);
    std::vector<std::byte> out(100);
    co_await a.write(1_MiB, make_bytes(100, 9));
    co_await a.read(1_MiB, out);
  }(*d1, *d2));
  EXPECT_EQ(ssd.counters().write_commands, 3u);
  EXPECT_EQ(ssd.counters().read_commands, 1u);
  EXPECT_EQ(ssd.counters().bytes_written, 64_KiB + 128_KiB + 100);
  EXPECT_EQ(ssd.namespace_bytes_written(ns1), 64_KiB + 100);
  EXPECT_EQ(ssd.namespace_bytes_written(ns2), 128_KiB);
}

// ---------------------------------------------------------------------
// RamDevice + PartitionView
// ---------------------------------------------------------------------

TEST(RamDeviceTest, InstantRoundtrip) {
  sim::Engine eng;
  RamDevice dev(1_MiB);
  eng.run_task([](sim::Engine& e, RamDevice& d) -> sim::Task<void> {
    auto data = make_bytes(100, 0x77);
    EXPECT_TRUE((co_await d.write(0, data)).ok());
    std::vector<std::byte> out(100);
    EXPECT_TRUE((co_await d.read(0, out)).ok());
    EXPECT_EQ(out, data);
    EXPECT_EQ(e.now(), 0);  // zero simulated time
  }(eng, dev));
}

TEST(RamDeviceTest, BoundsChecked) {
  sim::Engine eng;
  RamDevice dev(4096);
  eng.run_task([](RamDevice& d) -> sim::Task<void> {
    auto data = make_bytes(100, 1);
    EXPECT_FALSE((co_await d.write(4050, data)).ok());
    std::vector<std::byte> out(100);
    EXPECT_FALSE((co_await d.read(4050, out)).ok());
  }(dev));
}

TEST(PartitionViewTest, TranslatesAndBounds) {
  sim::Engine eng;
  RamDevice dev(1_MiB);
  PartitionView part(dev, 64_KiB, 64_KiB);
  eng.run_task([](RamDevice& d, PartitionView& p) -> sim::Task<void> {
    auto data = make_bytes(256, 0x42);
    EXPECT_TRUE((co_await p.write(0, data)).ok());
    // Visible at the translated offset on the parent.
    std::vector<std::byte> out(256);
    EXPECT_TRUE((co_await d.read(64_KiB, out)).ok());
    EXPECT_EQ(out, data);
    // Out-of-partition access rejected even though the parent has room.
    EXPECT_FALSE((co_await p.write(64_KiB - 10, data)).ok());
    EXPECT_EQ(p.capacity(), 64_KiB);
  }(dev, part));
}

TEST(PartitionViewTest, TaggedIoTranslates) {
  sim::Engine eng;
  RamDevice dev(1_MiB, 4096);
  PartitionView part(dev, 128_KiB, 256_KiB);
  eng.run_task([](PartitionView& p) -> sim::Task<void> {
    EXPECT_TRUE((co_await p.write_tagged(0, 64_KiB, 11)).ok());
    auto tag = co_await p.read_tagged(0, 64_KiB);
    EXPECT_TRUE(tag.ok());  // ASSERT_* would `return` inside a coroutine
    // The expected tag is computed at the *absolute* offset.
    if (tag.ok()) {
      EXPECT_EQ(*tag, PayloadStore::expected_tag(11, 128_KiB, 64_KiB, 4096));
    }
  }(part));
}

}  // namespace
}  // namespace nvmecr::hw
