// Chaos subsystem tests (DESIGN.md §17): schedule generation is
// deterministic and bounded, the Weibull option actually clusters
// failures, serialization round-trips byte-identically, ddmin shrinks
// to a locally minimal subset against a synthetic oracle, the
// Young/Daly formulas match hand-computed values, fsck_all is clean on
// a healthy run, and a small pinned-seed campaign upholds the survival
// trichotomy with deterministic outcomes across two sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/daly.h"
#include "chaos/inject.h"
#include "chaos/schedule.h"
#include "nvmecr/runtime.h"
#include "workloads/app_driver.h"
#include "workloads/apps.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using chaos::CampaignConfig;
using chaos::CampaignResult;
using chaos::CampaignRunner;
using chaos::DomainModel;
using chaos::FailureEvent;
using chaos::FailureSchedule;
using chaos::FaultKind;
using chaos::MtbfDist;
using chaos::ScheduleParams;
using chaos::Verdict;

ScheduleParams busy_params(uint64_t seed) {
  ScheduleParams p;
  p.seed = seed;
  p.target.mtbf = 20.0 * kMillisecond;
  p.target.transient_prob = 0.8;
  p.ssd.mtbf = 30.0 * kMillisecond;
  p.ssd.dist = MtbfDist::kWeibull;
  p.link.mtbf = 25.0 * kMillisecond;
  p.straggler.mtbf = 40.0 * kMillisecond;
  p.partition.mtbf = 150.0 * kMillisecond;
  p.rack_burst_prob = 0.3;
  p.cascade_prob = 0.3;
  p.job_kill_prob = 1.0;
  return p;
}

// ---------------------------------------------------------------------------
// Schedule generation

TEST(ScheduleTest, SameSeedSameSchedule) {
  const FailureSchedule a = chaos::generate_schedule(busy_params(7));
  const FailureSchedule b = chaos::generate_schedule(busy_params(7));
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(chaos::serialize_schedule(a), chaos::serialize_schedule(b));
  // A different seed draws a different storm.
  const FailureSchedule c = chaos::generate_schedule(busy_params(8));
  EXPECT_NE(chaos::serialize_schedule(a), chaos::serialize_schedule(c));
}

TEST(ScheduleTest, EventsRespectBoundsAndOrdering) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const ScheduleParams p = busy_params(seed);
    const FailureSchedule s = chaos::generate_schedule(p);
    EXPECT_LE(s.events.size(), p.max_events);
    uint32_t kills = 0;
    for (size_t i = 0; i < s.events.size(); ++i) {
      const FailureEvent& e = s.events[i];
      EXPECT_EQ(e.id, static_cast<uint32_t>(i));  // stable shrinker keys
      if (e.kind == FaultKind::kJobKill) {
        ++kills;
        EXPECT_LT(e.victim, p.epochs);
      } else {
        EXPECT_GE(e.at, 0);
        EXPECT_LT(e.at, p.horizon);
        if (e.until != 0) EXPECT_GT(e.until, e.at);  // 0 = permanent
      }
      if (i > 0 && s.events[i - 1].kind != FaultKind::kJobKill &&
          e.kind != FaultKind::kJobKill) {
        EXPECT_LE(s.events[i - 1].at, e.at);
      }
      if (e.kind == FaultKind::kStraggler) {
        EXPECT_GE(e.factor, p.straggler_factor_min);
        EXPECT_LE(e.factor, p.straggler_factor_max);
      }
    }
    EXPECT_LE(kills, 1u);  // at most one process kill per schedule
  }
}

// Weibull shape < 1 clusters arrivals: the dispersion (variance/mean)
// of interarrival gaps must exceed the exponential's, aggregated over
// many seeds so the test is statistical but deterministic.
TEST(ScheduleTest, WeibullClustersFailures) {
  auto gap_dispersion = [](MtbfDist dist) {
    std::vector<double> gaps;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      ScheduleParams p;
      p.seed = seed;
      p.horizon = 400 * kMillisecond;
      p.storage_nodes = 1;  // one arrival process: gaps are meaningful
      p.racks = 1;
      p.target.mtbf = 20.0 * kMillisecond;
      p.target.dist = dist;
      p.target.weibull_shape = 0.5;
      p.max_events = 1000;
      const FailureSchedule s = chaos::generate_schedule(p);
      for (size_t i = 1; i < s.events.size(); ++i) {
        gaps.push_back(static_cast<double>(s.events[i].at - s.events[i - 1].at));
      }
    }
    double mean = 0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return var / mean;
  };
  EXPECT_GT(gap_dispersion(MtbfDist::kWeibull),
            1.5 * gap_dispersion(MtbfDist::kExponential));
}

TEST(ScheduleTest, SerializeParseRoundTrip) {
  for (uint64_t seed : {1ull, 9ull, 0xDEADull}) {
    const FailureSchedule s = chaos::generate_schedule(busy_params(seed));
    const std::string text = chaos::serialize_schedule(s);
    auto parsed = chaos::parse_schedule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(chaos::serialize_schedule(*parsed), text);
    EXPECT_EQ(parsed->params.seed, s.params.seed);
    EXPECT_EQ(parsed->params.horizon, s.params.horizon);
    ASSERT_EQ(parsed->events.size(), s.events.size());
    for (size_t i = 0; i < s.events.size(); ++i) {
      EXPECT_EQ(parsed->events[i].kind, s.events[i].kind);
      EXPECT_EQ(parsed->events[i].at, s.events[i].at);
      EXPECT_EQ(parsed->events[i].until, s.events[i].until);
      EXPECT_EQ(parsed->events[i].kill_point, s.events[i].kill_point);
    }
  }
  EXPECT_FALSE(chaos::parse_schedule("not a schedule\n").ok());
  EXPECT_FALSE(chaos::parse_schedule("# nvmecr chaos schedule v1\n"
                                     "event 0 bogus-kind 0 1 2 1.0 none\n")
                   .ok());
}

TEST(ScheduleTest, MtbfAggregatesCrashFamilies) {
  ScheduleParams p;
  p.storage_nodes = 8;
  p.racks = 4;
  p.target.mtbf = 400.0 * kMillisecond;
  p.ssd.mtbf = 800.0 * kMillisecond;
  // Rates add: 8/400 + 8/800 = 0.03 failures/ms across the fleet.
  EXPECT_NEAR(chaos::schedule_mtbf(p), kMillisecond / 0.03, 1.0);
  ScheduleParams off;
  off.target.mtbf = 0;
  off.ssd.mtbf = 0;
  off.partition.mtbf = 0;
  EXPECT_EQ(chaos::schedule_mtbf(off), static_cast<double>(off.horizon));
}

// ---------------------------------------------------------------------------
// ddmin shrinking

TEST(DdminTest, FindsMinimalSubsetAgainstSyntheticOracle) {
  // Failure requires {3, 11} together; everything else is noise.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 16; ++i) ids.push_back(i);
  uint32_t probes = 0;
  auto fails = [&probes](const std::vector<uint32_t>& subset) {
    ++probes;
    bool has3 = false;
    bool has11 = false;
    for (uint32_t id : subset) {
      has3 = has3 || id == 3;
      has11 = has11 || id == 11;
    }
    return has3 && has11;
  };
  const std::vector<uint32_t> minimal = chaos::ddmin(ids, fails);
  EXPECT_EQ(minimal, (std::vector<uint32_t>{3, 11}));
  EXPECT_LT(probes, 200u);  // quadratic worst case, far less here

  // Single-event culprit shrinks to exactly that event.
  auto fails_single = [](const std::vector<uint32_t>& subset) {
    return std::find(subset.begin(), subset.end(), 7u) != subset.end();
  };
  EXPECT_EQ(chaos::ddmin(ids, fails_single), (std::vector<uint32_t>{7}));

  // An unconditional failure (empty subset still fails) shrinks to {}.
  auto fails_always = [](const std::vector<uint32_t>&) { return true; };
  EXPECT_TRUE(chaos::ddmin(ids, fails_always).empty());
}

// ---------------------------------------------------------------------------
// Young / Daly

TEST(DalyTest, FormulasMatchHandComputedValues) {
  // M = 50, δ = 1 (any consistent unit): Young = sqrt(2*1*50) = 10.
  EXPECT_NEAR(chaos::young_interval(50.0, 1.0), 10.0, 1e-12);
  // Daly: x = sqrt(1/100) = 0.1 -> 10*(1 + 0.1/3 + 0.01/9) - 1.
  const double daly = 10.0 * (1.0 + 0.1 / 3.0 + 0.01 / 9.0) - 1.0;
  EXPECT_NEAR(chaos::daly_interval(50.0, 1.0), daly, 1e-12);
  // δ >= 2M: checkpointing can't pay for itself; clamp to M.
  EXPECT_EQ(chaos::daly_interval(10.0, 20.0), 10.0);
  EXPECT_EQ(chaos::daly_interval(10.0, 25.0), 10.0);
  // Daly's correction raises the interval above Young's for the same
  // inputs (the -δ term is more than offset only at large δ/M).
  EXPECT_GT(chaos::daly_interval(50.0, 1.0), 0.9 * chaos::young_interval(50.0, 1.0));
}

// ---------------------------------------------------------------------------
// fsck over live runtimes

TEST(FsckAllTest, HealthyRunIsClean) {
  nvmecr_rt::ClusterSpec spec;
  spec.compute_nodes = 4;
  spec.storage_nodes = 4;
  spec.storage_racks = 2;
  nvmecr_rt::Cluster cluster(spec);
  nvmecr_rt::Scheduler sched(cluster);
  auto job = sched.allocate(4, 4, 64_MiB, spec.storage_nodes);
  ASSERT_TRUE(job.ok());
  nvmecr_rt::NvmecrSystem sys(cluster, *job, nvmecr_rt::RuntimeConfig{});

  const workloads::AppSpec* app = workloads::find_app("CoMD");
  ASSERT_NE(app, nullptr);
  workloads::AppRunParams p;
  p.io = workloads::io_params_for(*app, 4);
  p.io.procs_per_node = 4;
  p.io.atoms_per_rank = 2048;
  p.io.bytes_per_atom = 512;
  p.io.io_chunk = 1_MiB;
  p.io.checkpoints = 3;
  p.io.compute_per_period = 2 * kMillisecond;
  p.io.keep_last = 4;
  workloads::AppDriver driver(cluster, sys, *app, p);
  auto r = driver.run();
  ASSERT_TRUE(r.ok()) << r.status().to_string();

  EXPECT_EQ(sys.live_clients(), 4u);
  auto issues = cluster.engine().run_task(sys.fsck_all());
  ASSERT_TRUE(issues.ok()) << issues.status().to_string();
  EXPECT_TRUE(issues->empty());
}

// ---------------------------------------------------------------------------
// Campaign

CampaignConfig quick_config() {
  CampaignConfig cfg;
  cfg.ranks = 4;
  cfg.epochs = 4;
  return cfg;
}

TEST(CampaignTest, QuickCampaignUpholdsTrichotomy) {
  CampaignRunner runner(quick_config());
  const CampaignResult res = runner.run_campaign(/*schedules=*/12);
  EXPECT_TRUE(res.clean()) << chaos::verdict_name(res.first_violation->verdict)
                           << ": " << res.first_violation->status.to_string();
  EXPECT_EQ(res.runs, 12u);
  EXPECT_EQ(res.hangs, 0u);
  EXPECT_EQ(res.corruptions, 0u);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.completed + res.typed_failures, res.runs);
  EXPECT_EQ(res.exit_code(), chaos::kExitOk);
}

TEST(CampaignTest, OutcomesAreDeterministicAcrossRunners) {
  auto sweep = []() {
    CampaignRunner runner(quick_config());
    std::vector<Verdict> verdicts;
    std::vector<SimDuration> times;
    for (uint32_t i = 0; i < 6; ++i) {
      const FailureSchedule sched =
          chaos::generate_schedule(runner.schedule_params(i));
      const chaos::RunOutcome out = runner.run_schedule(sched);
      verdicts.push_back(out.verdict);
      times.push_back(out.run_time);
    }
    return std::make_pair(verdicts, times);
  };
  const auto a = sweep();
  const auto b = sweep();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // bit-identical sim timelines
}

TEST(CampaignTest, OverwhelmingScheduleYieldsTypedFailureNotViolation) {
  // Permanently crash every target: both partner domains die, the run
  // must surface the typed exhaustion — and the fsck gate still passes.
  CampaignRunner runner(quick_config());
  FailureSchedule sched;
  sched.params = runner.schedule_params(0);
  for (uint32_t n = 0; n < sched.params.storage_nodes; ++n) {
    FailureEvent e;
    e.id = n;
    e.kind = FaultKind::kTargetCrash;
    e.victim = n;
    e.at = 1 * kMillisecond;
    e.until = 0;  // permanent
    sched.events.push_back(e);
  }
  const chaos::RunOutcome out = runner.run_schedule(sched);
  EXPECT_EQ(out.verdict, Verdict::kTypedFailure)
      << out.status.to_string();
  EXPECT_FALSE(out.violation());
  EXPECT_EQ(chaos::verdict_exit_code(out.verdict), chaos::kExitTypedFailure);
}

TEST(CampaignTest, SubsetRestrictsInjection) {
  CampaignRunner runner(quick_config());
  const FailureSchedule sched =
      chaos::generate_schedule(runner.schedule_params(3));
  ASSERT_GE(sched.events.size(), 2u);
  const std::vector<uint32_t> subset = {sched.events[0].id};
  const chaos::RunOutcome out = runner.run_schedule(sched, &subset);
  EXPECT_LE(out.faults.applied, 1u);
  EXPECT_FALSE(out.violation());
}

TEST(CampaignTest, ReproducerLineNamesSeedAndSubset) {
  FailureSchedule sched;
  sched.params.seed = 0x2A;
  sched.events.resize(10);
  // Whole-schedule reproducer: just the seed, no --events filter.
  const std::string all = chaos::reproducer_line(
      sched, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_NE(all.find("--replay-seed 0x2a"), std::string::npos);
  EXPECT_EQ(all.find("--events"), std::string::npos);
  const std::string some = chaos::reproducer_line(sched, {1, 4, 7});
  EXPECT_NE(some.find("--replay-seed 0x2a"), std::string::npos);
  EXPECT_NE(some.find("--events 1,4,7"), std::string::npos);
}

}  // namespace
}  // namespace nvmecr
