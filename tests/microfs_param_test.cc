// Parameterized sweeps (TEST_P) over the microfs configuration space and
// the device geometry: the same canonical workload + crash-recovery
// sequence must satisfy every invariant at every point of the grid.
#include <gtest/gtest.h>

#include <tuple>

#include "hw/nvme_ssd.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

// ---------------------------------------------------------------------
// MicroFs configuration grid: hugeblock size x coalescing x submission
// batching. Each point runs a canonical multi-file workload, crashes,
// recovers, and checks namespace/content/accounting invariants.
// ---------------------------------------------------------------------

using FsConfig = std::tuple<uint64_t /*hugeblock*/, uint32_t /*window*/,
                            uint32_t /*io_batch*/>;

class MicroFsConfigSweep : public ::testing::TestWithParam<FsConfig> {
 protected:
  Options make_options() const {
    Options options;
    options.hugeblock_size = std::get<0>(GetParam());
    options.coalesce_window = std::get<1>(GetParam());
    options.io_batch_hugeblocks = std::get<2>(GetParam());
    options.log_slots = 512;
    return options;
  }
};

TEST_P(MicroFsConfigSweep, CanonicalWorkloadSurvivesCrash) {
  sim::Engine eng;
  hw::RamDevice dev(128_MiB, 4096);
  const Options options = make_options();

  uint64_t used_blocks_before_crash = 0;
  {
    auto fs = eng.run_task(MicroFs::format(eng, dev, options)).value();
    eng.run_task([](MicroFs& m, uint64_t& used) -> sim::Task<void> {
      EXPECT_TRUE((co_await m.mkdir("/ckpt")).ok());
      // Three generations of checkpoints with retention of two.
      for (int step = 0; step < 3; ++step) {
        auto fd = co_await m.creat("/ckpt/step" + std::to_string(step));
        EXPECT_TRUE(fd.ok());
        // Misaligned stream: header then fixed chunks.
        EXPECT_TRUE((co_await m.write_tagged(*fd, 200)).ok());
        for (int i = 0; i < 6; ++i) {
          EXPECT_TRUE((co_await m.write_tagged(*fd, 512_KiB)).ok());
        }
        EXPECT_TRUE((co_await m.fsync(*fd)).ok());
        EXPECT_TRUE((co_await m.close(*fd)).ok());
        if (step >= 2) {
          EXPECT_TRUE(
              (co_await m.unlink("/ckpt/step" + std::to_string(step - 2)))
                  .ok());
        }
      }
      // A byte-content file alongside the tagged ones.
      auto meta = co_await m.creat("/ckpt/manifest");
      std::vector<std::byte> bytes(3000, std::byte{0x6d});
      EXPECT_TRUE((co_await m.write(*meta, bytes)).ok());
      EXPECT_TRUE((co_await m.close(*meta)).ok());
      used = m.data_region_blocks() - m.free_blocks();
    }(*fs, used_blocks_before_crash));
    // Crash: no clean shutdown.
  }

  auto fs = eng.run_task(MicroFs::recover(eng, dev, options)).value();
  // Namespace invariant.
  auto names = fs->readdir("/ckpt");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"manifest", "step1", "step2"}));
  // Size + content invariants.
  const uint64_t expect_size = 200 + 6 * 512_KiB;
  EXPECT_EQ(fs->stat("/ckpt/step1")->size, expect_size);
  EXPECT_EQ(fs->stat("/ckpt/step2")->size, expect_size);
  EXPECT_EQ(fs->stat("/ckpt/manifest")->size, 3000u);
  eng.run_task([](MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged("/ckpt/step1")).ok());
    EXPECT_TRUE((co_await m.verify_tagged("/ckpt/step2")).ok());
    auto fd = co_await m.open("/ckpt/manifest", OpenFlags::ReadOnly());
    std::vector<std::byte> out(3000);
    EXPECT_EQ(*(co_await m.read(*fd, out)), 3000u);
    for (auto b : out) EXPECT_EQ(b, std::byte{0x6d});
    co_await m.close(*fd);
  }(*fs));
  // Block accounting invariant: recovery reconstructs exactly the same
  // allocation census the crashed instance had.
  EXPECT_EQ(fs->data_region_blocks() - fs->free_blocks(),
            used_blocks_before_crash);
  // Device-resident dirfile agrees with the namespace.
  eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto stream = co_await m.read_dirfile("/ckpt");
    EXPECT_TRUE(stream.ok());
    if (stream.ok()) {
      EXPECT_EQ(live_view(*stream).size(), 3u);
    }
  }(*fs));
}

TEST_P(MicroFsConfigSweep, OverwriteAfterRecoveryKeepsAccounting) {
  sim::Engine eng;
  hw::RamDevice dev(128_MiB, 4096);
  const Options options = make_options();
  {
    auto fs = eng.run_task(MicroFs::format(eng, dev, options)).value();
    eng.run_task([](MicroFs& m) -> sim::Task<void> {
      auto fd = co_await m.creat("/f");
      EXPECT_TRUE((co_await m.write_tagged(*fd, 2_MiB)).ok());
      co_await m.close(*fd);
    }(*fs));
  }
  auto fs = eng.run_task(MicroFs::recover(eng, dev, options)).value();
  // Truncate-recreate on the recovered instance, then write again.
  eng.run_task([](MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/f");  // O_TRUNC frees the old blocks
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
    EXPECT_TRUE((co_await m.verify_tagged("/f")).ok());
  }(*fs));
  const uint64_t hb = std::get<0>(GetParam());
  EXPECT_EQ(fs->stat("/f")->size, 1_MiB);
  // Exactly the file's blocks plus the root dirfile remain allocated.
  const uint64_t file_blocks = ceil_div(1_MiB, hb);
  const uint64_t used = fs->data_region_blocks() - fs->free_blocks();
  EXPECT_GE(used, file_blocks);
  EXPECT_LE(used, file_blocks + 2);  // root dirfile
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, MicroFsConfigSweep,
    ::testing::Combine(
        ::testing::Values(4_KiB, 8_KiB, 32_KiB, 128_KiB, 1_MiB),
        ::testing::Values(0u, 8u, 64u),
        ::testing::Values(1u, 16u, 256u)),
    [](const ::testing::TestParamInfo<FsConfig>& info) {
      return "hb" + std::to_string(std::get<0>(info.param) >> 10) +
             "K_win" + std::to_string(std::get<1>(info.param)) + "_batch" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Device geometry sweep: channels x device RAM. Invariants: content
// integrity and sustained bandwidth bounded by the spec.
// ---------------------------------------------------------------------

using DevConfig = std::tuple<uint32_t /*channels*/, uint64_t /*ram*/>;

class SsdGeometrySweep : public ::testing::TestWithParam<DevConfig> {};

TEST_P(SsdGeometrySweep, SustainedWriteBoundedBySpec) {
  sim::Engine eng;
  hw::SsdSpec spec;
  spec.capacity = 2_GiB;
  spec.channels = std::get<0>(GetParam());
  spec.device_ram = std::get<1>(GetParam());
  hw::NvmeSsd ssd(eng, spec, "sweep");
  const uint32_t nsid = ssd.create_namespace(1_GiB).value();
  const uint32_t q = ssd.alloc_queue().value();
  auto dev = ssd.open_queue(nsid, q);
  constexpr uint64_t kTotal = 512_MiB;
  eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
    for (uint64_t off = 0; off < kTotal; off += 4_MiB) {
      EXPECT_TRUE((co_await d.write_tagged_batch(off, 4_MiB, 3, 128)).ok());
    }
    EXPECT_TRUE((co_await d.flush()).ok());
  }(*dev));
  const double bps = bandwidth_bps(kTotal, eng.now());
  EXPECT_LE(bps, static_cast<double>(spec.write_bw) * 1.02);
  EXPECT_GE(bps, static_cast<double>(spec.write_bw) * 0.80);
  // Integrity regardless of geometry.
  eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
    auto tag = co_await d.read_tagged(0, kTotal);
    EXPECT_TRUE(tag.ok());
    if (tag.ok()) {
      EXPECT_EQ(*tag, hw::PayloadStore::expected_tag(3, d.tag_origin(),
                                                     kTotal, 4096));
    }
  }(*dev));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SsdGeometrySweep,
    ::testing::Combine(::testing::Values(1u, 4u, 7u, 16u),
                       ::testing::Values(uint64_t{0}, 64_MiB, 256_MiB)),
    [](const ::testing::TestParamInfo<DevConfig>& info) {
      return "ch" + std::to_string(std::get<0>(info.param)) + "_ram" +
             std::to_string(std::get<1>(info.param) >> 20) + "M";
    });

// ---------------------------------------------------------------------
// Payload store block-size sweep.
// ---------------------------------------------------------------------

class PayloadStoreBlockSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PayloadStoreBlockSweep, PatternRoundtripAtEveryBlockSize) {
  const uint32_t bs = GetParam();
  hw::PayloadStore store(bs);
  const uint64_t len = 16ull * bs;
  ASSERT_TRUE(store.write_pattern(bs, len, 9).ok());
  auto tag = store.read_combined_tag(bs, len);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, hw::PayloadStore::expected_tag(9, bs, len, bs));
  // Partial overwrite changes exactly the covered blocks' contribution.
  ASSERT_TRUE(store.write_pattern(2 * bs, bs, 11).ok());
  auto tag2 = store.read_combined_tag(bs, len);
  ASSERT_TRUE(tag2.ok());
  EXPECT_EQ(*tag2, *tag - hw::PayloadStore::block_tag(9, 2) +
                       hw::PayloadStore::block_tag(11, 2));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, PayloadStoreBlockSweep,
                         ::testing::Values(512u, 4096u, 16384u, 65536u));

}  // namespace
}  // namespace nvmecr::microfs
