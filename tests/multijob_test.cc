// Multi-job tests for the §III-F security model: the scheduler hands
// storage to jobs at NVMe-namespace granularity; SSDs are shared between
// applications, with namespace isolation keeping them apart, and
// "the number of concurrent jobs an SSD can support is only limited by
// its bandwidth".
#include <gtest/gtest.h>

#include "hw/ram_device.h"
#include "nvmecr/runtime.h"
#include "simcore/event.h"
#include "workloads/comd.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;
using nvmecr_rt::RuntimeConfig;
using nvmecr_rt::Scheduler;

TEST(MultiJobTest, SeekRepositionsReadCursor) {
  // (Coverage for the lseek surface the N-1 adapter uses.)
  sim::Engine eng;
  hw::RamDevice dev(64_MiB, 4096);
  auto fs = eng.run_task(microfs::MicroFs::format(eng, dev, {})).value();
  eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = (co_await m.creat("/f")).value();
    std::vector<std::byte> a(1000, std::byte{0x41}), b(1000, std::byte{0x42});
    EXPECT_TRUE((co_await m.write(*&fd, a)).ok());
    EXPECT_TRUE((co_await m.write(fd, b)).ok());
    co_await m.close(fd);

    auto rfd = (co_await m.open("/f", microfs::OpenFlags::ReadOnly())).value();
    EXPECT_TRUE(m.seek(rfd, 1000).ok());
    std::vector<std::byte> out(1000);
    EXPECT_EQ(*(co_await m.read(rfd, out)), 1000u);
    for (auto x : out) EXPECT_EQ(x, std::byte{0x42});
    // Seek back.
    EXPECT_TRUE(m.seek(rfd, 0).ok());
    EXPECT_EQ(*(co_await m.read(rfd, out)), 1000u);
    for (auto x : out) EXPECT_EQ(x, std::byte{0x41});
    // Out-of-range and bad-fd seeks rejected.
    EXPECT_EQ(m.seek(rfd, 5000).code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(m.seek(999, 0).code(), ErrorCode::kBadFd);
    co_await m.close(rfd);
  }(*fs));
}

TEST(MultiJobTest, TwoJobsGetDisjointNamespaces) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job_a = sched.allocate(56, 28, 256_MiB, 2);
  auto job_b = sched.allocate(56, 28, 256_MiB, 2);
  ASSERT_TRUE(job_a.ok());
  ASSERT_TRUE(job_b.ok());
  // Same SSDs (both want the closest partners) but different namespaces.
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_NE(job_a->nsid_per_ssd[s], job_b->nsid_per_ssd[s]);
  }
  sched.release(*job_a);
  sched.release(*job_b);
}

TEST(MultiJobTest, JobsAreIsolatedAndBothComplete) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job_a = sched.allocate(28, 28, 128_MiB, 2);
  auto job_b = sched.allocate(28, 28, 128_MiB, 2);
  ASSERT_TRUE(job_a.ok());
  ASSERT_TRUE(job_b.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem sys_a(cluster, *job_a, config);
  nvmecr_rt::NvmecrSystem sys_b(cluster, *job_b, config);

  workloads::ComdParams params;
  params.nranks = 28;
  params.atoms_per_rank = 8192;
  params.bytes_per_atom = 512;
  params.checkpoints = 2;
  params.compute_per_period = 10 * kMillisecond;
  params.io_chunk = 1_MiB;

  // Run both jobs concurrently on the shared cluster: same engine, same
  // SSDs, different namespaces. (ComdDriver::run drains the engine, so
  // drive both with one joint spawn set.)
  StatusOr<workloads::JobMetrics> ma = InternalError("unset");
  StatusOr<workloads::JobMetrics> mb = InternalError("unset");
  // Sequential driver calls still share the cluster state; job B runs
  // after job A and must see untouched namespaces.
  ma = workloads::ComdDriver::run(cluster, sys_a, params);
  mb = workloads::ComdDriver::run(cluster, sys_b, params);
  ASSERT_TRUE(ma.ok()) << ma.status().to_string();
  ASSERT_TRUE(mb.ok()) << mb.status().to_string();
  EXPECT_GT(ma->checkpoint_efficiency(), 0.2);
  EXPECT_GT(mb->checkpoint_efficiency(), 0.2);

  // Load accounting is per-namespace: both jobs wrote the same volume.
  const auto bytes_a = sys_a.bytes_per_server();
  const auto bytes_b = sys_b.bytes_per_server();
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  for (size_t s = 0; s < bytes_a.size(); ++s) {
    EXPECT_EQ(bytes_a[s], bytes_b[s]);
    EXPECT_GT(bytes_a[s], 0u);
  }
  sched.release(*job_a);
  sched.release(*job_b);
}

TEST(MultiJobTest, ConcurrentJobsShareSsdBandwidth) {
  // Two jobs hammering the same SSD concurrently each see roughly half
  // the bandwidth — the §III-F claim that concurrent jobs per SSD are
  // bandwidth-limited, not namespace-limited.
  auto run = [](bool concurrent) {
    Cluster cluster;
    Scheduler sched(cluster);
    auto job_a = sched.allocate(8, 28, 256_MiB, 1).value();
    auto job_b = sched.allocate(8, 28, 256_MiB, 1).value();
    RuntimeConfig config;
    config.fs.io_batch_hugeblocks = 128;
    nvmecr_rt::NvmecrSystem sys_a(cluster, job_a, config);
    nvmecr_rt::NvmecrSystem sys_b(cluster, job_b, config);
    sim::Engine& eng = cluster.engine();
    auto writer = [](nvmecr_rt::NvmecrSystem& sys, int rank) -> sim::Task<void> {
      auto client = (co_await sys.connect(rank)).value();
      auto fd = (co_await client->create("/x")).value();
      for (int i = 0; i < 16; ++i) {
        NVMECR_CHECK((co_await client->write(fd, 4_MiB)).ok());
      }
      NVMECR_CHECK((co_await client->fsync(fd)).ok());
      NVMECR_CHECK((co_await client->close(fd)).ok());
    };
    for (int r = 0; r < 8; ++r) eng.spawn(writer(sys_a, r));
    if (concurrent) {
      for (int r = 0; r < 8; ++r) eng.spawn(writer(sys_b, r));
    }
    eng.run();
    if (!concurrent) {
      for (int r = 0; r < 8; ++r) eng.spawn(writer(sys_b, r));
      eng.run();
    }
    return eng.now();
  };
  const SimTime concurrent = run(true);
  const SimTime sequential = run(false);
  // Perfect bandwidth sharing: concurrent ~= sequential total time.
  const double ratio = static_cast<double>(concurrent) /
                       static_cast<double>(sequential);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.1);
}

}  // namespace
}  // namespace nvmecr

#include "metrics/report.h"

namespace nvmecr {
namespace {

TEST(MetricsReportTest, CsvAndTableRendering) {
  workloads::JobMetrics m;
  m.checkpoint_times = {2 * kSecond, 2 * kSecond};
  m.checkpoint_on_pfs = {false, false};
  m.fast_checkpoints = 2;
  m.bytes_per_checkpoint = 4ull << 30;
  m.hw_peak_write = 2200000000ull;
  m.hw_peak_read = 2500000000ull;
  m.checkpoint_time = 4 * kSecond;
  m.total_time = 10 * kSecond;
  m.compute_time = 6 * kSecond;
  m.recovery_time = 2 * kSecond;
  m.recovery_bytes = 4ull << 30;
  m.server_bytes = {100, 100, 100};

  metrics::ScalingReport report("unit");
  report.add("cfg-a", m);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("config,ckpt_eff"), std::string::npos);
  EXPECT_NE(csv.find("cfg-a,"), std::string::npos);
  // Makespan efficiency: 8 GiB / 4 s / 2.2 GB/s ~ 0.976.
  EXPECT_NE(csv.find("0.976"), std::string::npos);
  report.print_table(stderr);  // smoke
  // Round-trip through a file.
  ASSERT_TRUE(report.write_csv("/tmp/nvmecr_report_test.csv"));
  FILE* f = fopen("/tmp/nvmecr_report_test.csv", "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  ASSERT_NE(fgets(buf, sizeof(buf), f), nullptr);
  fclose(f);
  EXPECT_EQ(std::string(buf).rfind("config,", 0), 0u);
}

}  // namespace
}  // namespace nvmecr
