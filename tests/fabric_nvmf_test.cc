// Tests for the cluster topology, the RDMA network model, the NVMf
// target/initiator pair, the SPDK local driver, and the overhead wrapper.
#include <gtest/gtest.h>

#include <vector>

#include "fabric/network.h"
#include "fabric/topology.h"
#include "hw/nvme_ssd.h"
#include "hw/ram_device.h"
#include "nvmf/overhead_device.h"
#include "nvmf/spdk.h"
#include "nvmf/target.h"
#include "simcore/event.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using fabric::Network;
using fabric::NodeRole;
using fabric::Topology;

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

TEST(TopologyTest, PaperTestbedShape) {
  Topology t = Topology::paper_testbed();
  EXPECT_EQ(t.node_count(), 24u);
  EXPECT_EQ(t.rack_count(), 2u);
  EXPECT_EQ(t.nodes_with_role(NodeRole::kCompute).size(), 16u);
  EXPECT_EQ(t.nodes_with_role(NodeRole::kStorage).size(), 8u);
}

TEST(TopologyTest, HopCounts) {
  Topology t = Topology::paper_testbed();
  const auto compute = t.nodes_with_role(NodeRole::kCompute);
  const auto storage = t.nodes_with_role(NodeRole::kStorage);
  EXPECT_EQ(t.hops(compute[0], compute[0]), 0u);
  EXPECT_EQ(t.hops(compute[0], compute[1]), 2u);   // same rack
  EXPECT_EQ(t.hops(compute[0], storage[0]), 4u);   // cross rack
}

TEST(TopologyTest, FailureDomainsFollowRacks) {
  Topology t;
  const auto r0 = t.add_rack(4, NodeRole::kCompute);
  const auto r1 = t.add_rack(4, NodeRole::kStorage);
  for (auto n : t.nodes_in_rack(r0)) EXPECT_EQ(t.failure_domain(n), r0);
  for (auto n : t.nodes_in_rack(r1)) EXPECT_EQ(t.failure_domain(n), r1);
  EXPECT_EQ(t.rack_distance(r0, r0), 0u);
  EXPECT_EQ(t.rack_distance(r0, r1), 4u);
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

struct NetFixture {
  sim::Engine eng;
  Topology topo = Topology::paper_testbed();
  Network net{eng, topo};
};

TEST(NetworkTest, LatencyScalesWithHops) {
  NetFixture f;
  const auto compute = f.topo.nodes_with_role(NodeRole::kCompute);
  const auto storage = f.topo.nodes_with_role(NodeRole::kStorage);
  EXPECT_EQ(f.net.latency(compute[0], compute[0]), 0);
  EXPECT_EQ(f.net.latency(compute[0], compute[1]), 1_us + 2 * 150);
  EXPECT_EQ(f.net.latency(compute[0], storage[0]), 1_us + 4 * 150);
}

TEST(NetworkTest, TransferTimeMatchesNicRate) {
  NetFixture f;
  f.eng.run_task([](NetFixture& fx) -> sim::Task<void> {
    co_await fx.net.transfer(0, 16, 125_MiB);  // ~125 MiB at 12.5 GB/s
    const double expect = static_cast<double>(125_MiB) / 12.5e9;
    EXPECT_NEAR(to_seconds(fx.eng.now()), expect, expect * 0.02);
  }(f));
}

TEST(NetworkTest, SameNodeTransferIsFree) {
  NetFixture f;
  f.eng.run_task([](NetFixture& fx) -> sim::Task<void> {
    co_await fx.net.transfer(3, 3, 1_GiB);
    EXPECT_EQ(fx.eng.now(), 0);
  }(f));
}

TEST(NetworkTest, ConcurrentFlowsShareReceiverNic) {
  // Two senders to one receiver: the receiver's rx pipe is the
  // bottleneck, so each flow sees about half the NIC rate.
  NetFixture f;
  std::vector<SimTime> done(2);
  sim::JoinCounter join(f.eng);
  for (int i = 0; i < 2; ++i) {
    join.spawn([](NetFixture& fx, std::vector<SimTime>& d, int id)
                   -> sim::Task<void> {
      co_await fx.net.transfer(id, 16, 125_MiB);
      d[id] = fx.eng.now();
    }(f, done, i));
  }
  f.eng.run();
  const double expect = 2.0 * static_cast<double>(125_MiB) / 12.5e9;
  EXPECT_NEAR(to_seconds(done[0]), expect, expect * 0.05);
  EXPECT_NEAR(to_seconds(done[1]), expect, expect * 0.05);
}

TEST(NetworkTest, DisjointPairsDoNotInterfere) {
  NetFixture f;
  std::vector<SimTime> done(2);
  sim::JoinCounter join(f.eng);
  join.spawn([](NetFixture& fx, std::vector<SimTime>& d) -> sim::Task<void> {
    co_await fx.net.transfer(0, 16, 125_MiB);
    d[0] = fx.eng.now();
  }(f, done));
  join.spawn([](NetFixture& fx, std::vector<SimTime>& d) -> sim::Task<void> {
    co_await fx.net.transfer(1, 17, 125_MiB);
    d[1] = fx.eng.now();
  }(f, done));
  f.eng.run();
  const double expect = static_cast<double>(125_MiB) / 12.5e9;
  EXPECT_NEAR(to_seconds(done[0]), expect, expect * 0.05);
  EXPECT_NEAR(to_seconds(done[1]), expect, expect * 0.05);
}

TEST(NetworkTest, RpcPaysBothDirections) {
  NetFixture f;
  f.eng.run_task([](NetFixture& fx) -> sim::Task<void> {
    const SimDuration one_way = fx.net.latency(0, 16);
    co_await fx.net.rpc(0, 16, 64, 16);
    EXPECT_GE(fx.eng.now(), 2 * one_way);
  }(f));
}

// ---------------------------------------------------------------------
// NVMf target/initiator
// ---------------------------------------------------------------------

struct NvmfFixture {
  sim::Engine eng;
  Topology topo = Topology::paper_testbed();
  Network net{eng, topo};
  hw::NvmeSsd ssd{eng, hw::SsdSpec{.capacity = 4_GiB}};
  fabric::NodeId storage_node = topo.nodes_with_role(NodeRole::kStorage)[0];
  fabric::NodeId compute_node = topo.nodes_with_role(NodeRole::kCompute)[0];
  nvmf::NvmfTarget target{eng, net, storage_node, ssd};
};

TEST(NvmfTest, RemoteRoundtripPreservesData) {
  NvmfFixture f;
  const uint32_t nsid = *f.ssd.create_namespace(64_MiB);
  auto dev = f.target.connect(f.compute_node, nsid).value();
  f.eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
    std::vector<std::byte> data(5000, std::byte{0x3c});
    EXPECT_TRUE((co_await d.write(8192, data)).ok());
    std::vector<std::byte> out(5000);
    EXPECT_TRUE((co_await d.read(8192, out)).ok());
    EXPECT_EQ(out, data);
  }(*dev));
}

TEST(NvmfTest, RemoteOverheadIsSmallForLargeIo) {
  // The headline NVMf result (Figure 8(a)): remote access over RDMA adds
  // < 3.5% for checkpoint-sized writes.
  auto measure = [](bool remote) {
    NvmfFixture f;
    const uint32_t nsid = *f.ssd.create_namespace(2_GiB);
    std::unique_ptr<hw::BlockDevice> dev;
    if (remote) {
      dev = f.target.connect(f.compute_node, nsid).value();
    } else {
      dev = nvmf::SpdkLocalDevice::open(f.ssd, nsid).value();
    }
    f.eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
      for (uint64_t off = 0; off < 512_MiB; off += 1_MiB) {
        EXPECT_TRUE((co_await d.write_tagged(off, 1_MiB, 1)).ok());
      }
      co_await d.flush();
    }(*dev));
    return f.eng.now();
  };
  const SimTime local = measure(false);
  const SimTime remote = measure(true);
  EXPECT_GT(remote, local);
  EXPECT_LT(static_cast<double>(remote - local) / static_cast<double>(local),
            0.035);
}

TEST(NvmfTest, ConnectionsShareQueuesBeyondBudget) {
  // 56-112 processes share one SSD (§III-F) but the controller only has
  // 32 hardware queues: extra qpairs multiplex onto existing queues and
  // release correctly.
  NvmfFixture f;
  hw::SsdSpec spec;
  spec.capacity = 1_GiB;
  spec.max_queues = 2;
  hw::NvmeSsd tiny(f.eng, spec);
  nvmf::NvmfTarget target(f.eng, f.net, f.storage_node, tiny);
  const uint32_t nsid = *tiny.create_namespace(16_MiB);
  auto a = target.connect(f.compute_node, nsid);
  auto b = target.connect(f.compute_node, nsid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(tiny.queues_in_use(), 2u);
  // Third and fourth connections share the existing hardware queues.
  auto c = target.connect(f.compute_node, nsid);
  auto d = target.connect(f.compute_node, nsid);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(tiny.queues_in_use(), 2u);
  // Queues free only when the last sharer disconnects: a and c share
  // queue 0, b and d share queue 1.
  a->reset();
  d->reset();
  EXPECT_EQ(tiny.queues_in_use(), 2u);
  b->reset();
  c->reset();
  EXPECT_EQ(tiny.queues_in_use(), 0u);
}

TEST(NvmfTest, TargetCountsCommands) {
  NvmfFixture f;
  const uint32_t nsid = *f.ssd.create_namespace(64_MiB);
  auto dev = f.target.connect(f.compute_node, nsid).value();
  f.eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await d.write_tagged(static_cast<uint64_t>(i) * 32_KiB, 32_KiB, 1);
    }
  }(*dev));
  EXPECT_EQ(f.target.commands_processed(), 10u);
}

// ---------------------------------------------------------------------
// SPDK local driver + overhead wrapper
// ---------------------------------------------------------------------

TEST(SpdkTest, OwnsAndReleasesQueue) {
  sim::Engine eng;
  hw::NvmeSsd ssd(eng, hw::SsdSpec{.capacity = 1_GiB});
  const uint32_t nsid = *ssd.create_namespace(64_MiB);
  {
    auto dev = nvmf::SpdkLocalDevice::open(ssd, nsid).value();
    EXPECT_EQ(ssd.queues_in_use(), 1u);
  }
  EXPECT_EQ(ssd.queues_in_use(), 0u);
}

TEST(OverheadDeviceTest, ChargesAndAttributesKernelTime) {
  sim::Engine eng;
  hw::RamDevice ram(1_MiB);
  SimDuration kernel_time = 0;
  nvmf::OverheadDevice dev(
      eng, ram, {.per_op_submit = 2_us, .per_op_complete = 3_us},
      &kernel_time);
  eng.run_task([](sim::Engine& e, hw::BlockDevice& d,
                  SimDuration& kt) -> sim::Task<void> {
    std::vector<std::byte> data(100, std::byte{1});
    co_await d.write(0, data);
    EXPECT_EQ(e.now(), 5_us);
    EXPECT_EQ(kt, 5_us);
    std::vector<std::byte> out(100);
    co_await d.read(0, out);
    EXPECT_EQ(kt, 10_us);
    EXPECT_EQ(out, data);
  }(eng, dev, kernel_time));
}

TEST(OverheadDeviceTest, NullAccumulatorIsFine) {
  sim::Engine eng;
  hw::RamDevice ram(1_MiB);
  nvmf::OverheadDevice dev(eng, ram, {.per_op_submit = 1_us});
  eng.run_task([](hw::BlockDevice& d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d.flush()).ok());
  }(dev));
  EXPECT_EQ(eng.now(), 1_us);
}

}  // namespace
}  // namespace nvmecr
