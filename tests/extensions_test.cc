// Tests for the extensions beyond the paper's core: the N-1 checkpoint
// pattern adapter (PLFS-style translation, §III-E's "other prevalent
// pattern") and the DRAM cache layer (§V future work).
#include <gtest/gtest.h>

#include "hw/ram_device.h"
#include "nvmecr/cache.h"
#include "nvmecr/n1_adapter.h"
#include "nvmecr/runtime.h"
#include "simcore/engine.h"

namespace nvmecr::nvmecr_rt {
namespace {

using namespace nvmecr::literals;

// ---------------------------------------------------------------------
// N-1 adapter
// ---------------------------------------------------------------------

struct N1Fixture {
  sim::Engine eng;
  hw::RamDevice dev{256_MiB, 4096};
  std::unique_ptr<microfs::MicroFs> fs =
      eng.run_task(microfs::MicroFs::format(eng, dev, {})).value();
};

TEST(N1AdapterTest, IndexCodecRoundtrip) {
  std::vector<N1Extent> index{{0, 100, 0}, {4096, 200, 100}, {9999, 1, 300}};
  std::vector<std::byte> buf;
  encode_n1_index(index, buf);
  auto decoded = decode_n1_index(buf);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1].logical_off, 4096u);
  EXPECT_EQ((*decoded)[1].length, 200u);
  EXPECT_EQ((*decoded)[1].segment_off, 100u);
  // Corruption detected.
  buf[8] ^= std::byte{1};
  EXPECT_FALSE(decode_n1_index(buf).ok());
}

TEST(N1AdapterTest, StridedWriteReadRoundtrip) {
  N1Fixture f;
  // Rank 3 of 8 writes blocks 3, 11, 19, ... of a logical shared file
  // with 1 MiB blocks.
  constexpr uint64_t kBlock = 1_MiB;
  constexpr int kRanks = 8, kMyRank = 3, kRounds = 5;
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto writer = (co_await N1Writer::create(m, "/shared.ckpt")).value();
    for (int round = 0; round < kRounds; ++round) {
      const uint64_t logical =
          (static_cast<uint64_t>(round) * kRanks + kMyRank) * kBlock;
      EXPECT_TRUE((co_await writer->write_at(logical, kBlock)).ok());
    }
    // Strided (non-contiguous) logical offsets: one extent per stride.
    EXPECT_EQ(writer->index_entries(), static_cast<size_t>(kRounds));
    EXPECT_TRUE((co_await writer->close()).ok());

    auto reader = (co_await N1Reader::open(m, "/shared.ckpt")).value();
    EXPECT_EQ(reader->covered_bytes(), kRounds * kBlock);
    for (int round = 0; round < kRounds; ++round) {
      const uint64_t logical =
          (static_cast<uint64_t>(round) * kRanks + kMyRank) * kBlock;
      EXPECT_TRUE((co_await reader->read_at(logical, kBlock)).ok());
    }
    // A range this rank never wrote is reported, not fabricated.
    EXPECT_EQ((co_await reader->read_at(0, kBlock)).code(),
              ErrorCode::kNotFound);
  }(*f.fs));
}

TEST(N1AdapterTest, ContiguousWritesCoalesceIndex) {
  N1Fixture f;
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto writer = (co_await N1Writer::create(m, "/seq.ckpt")).value();
    // A contiguous logical stream in many pieces: ONE index extent.
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(
          (co_await writer->write_at(static_cast<uint64_t>(i) * 256_KiB,
                                     256_KiB))
              .ok());
    }
    EXPECT_EQ(writer->index_entries(), 1u);
    EXPECT_TRUE((co_await writer->close()).ok());
    auto reader = (co_await N1Reader::open(m, "/seq.ckpt")).value();
    EXPECT_TRUE((co_await reader->read_at(3 * 256_KiB, 1_MiB)).ok());
  }(*f.fs));
}

TEST(N1AdapterTest, CrashBeforeCloseLeavesNoUsableShare) {
  N1Fixture f;
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    {
      auto writer = (co_await N1Writer::create(m, "/torn.ckpt")).value();
      EXPECT_TRUE((co_await writer->write_at(0, 1_MiB)).ok());
      // Writer dropped without close(): no index is ever written.
    }
    auto reader = co_await N1Reader::open(m, "/torn.ckpt");
    EXPECT_EQ(reader.status().code(), ErrorCode::kNotFound);
  }(*f.fs));
}

TEST(N1AdapterTest, ShareSurvivesCrashRecovery) {
  N1Fixture f;
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto writer = (co_await N1Writer::create(m, "/durable.ckpt")).value();
    EXPECT_TRUE((co_await writer->write_at(2_MiB, 1_MiB)).ok());
    EXPECT_TRUE((co_await writer->write_at(10_MiB, 1_MiB)).ok());
    EXPECT_TRUE((co_await writer->close()).ok());
  }(*f.fs));
  f.fs.reset();  // crash
  auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, f.dev, {})).value();
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto reader = (co_await N1Reader::open(m, "/durable.ckpt")).value();
    EXPECT_EQ(reader->index().size(), 2u);
    EXPECT_TRUE((co_await reader->read_at(2_MiB, 1_MiB)).ok());
    EXPECT_TRUE((co_await reader->read_at(10_MiB, 1_MiB)).ok());
  }(*fs));
}

// ---------------------------------------------------------------------
// Cache layer
// ---------------------------------------------------------------------

struct CacheFixture {
  Cluster cluster;
  Scheduler sched{cluster};
  JobAllocation job = sched.allocate(1, 28, 256_MiB, 1).value();
  NvmecrSystem system{cluster, job, RuntimeConfig{}};

  std::unique_ptr<CachedClient> cached_client(uint64_t capacity) {
    std::unique_ptr<CachedClient> out;
    cluster.engine().run_task([&]() -> sim::Task<void> {
      auto inner = (co_await system.connect(0)).value();
      out = std::make_unique<CachedClient>(cluster.engine(),
                                           std::move(inner), capacity);
    }());
    return out;
  }
};

TEST(CacheLayerTest, RereadHitsDram) {
  CacheFixture f;
  auto client = f.cached_client(64_MiB);
  f.cluster.engine().run_task([](sim::Engine& e,
                                 CachedClient& c) -> sim::Task<void> {
    auto fd = co_await c.create("/ckpt");
    EXPECT_TRUE((co_await c.write(*fd, 16_MiB)).ok());
    EXPECT_TRUE((co_await c.close(*fd)).ok());

    // Cold device read would take 16 MiB / 2.2 GB/s ~ 7 ms; a DRAM hit
    // takes 16 MiB / 8 GB/s ~ 2 ms.
    auto rfd = co_await c.open_read("/ckpt");
    const SimTime start = e.now();
    EXPECT_TRUE((co_await c.read(*rfd, 16_MiB)).ok());
    const SimDuration hit_time = e.now() - start;
    EXPECT_TRUE((co_await c.close(*rfd)).ok());
    EXPECT_LT(hit_time, 4 * kMillisecond);
    EXPECT_EQ(c.stats().hit_bytes, 16_MiB);
    EXPECT_EQ(c.stats().miss_bytes, 0u);
  }(f.cluster.engine(), *client));
}

TEST(CacheLayerTest, EvictionUnderCapacity) {
  CacheFixture f;
  auto client = f.cached_client(10_MiB);
  f.cluster.engine().run_task([](CachedClient& c) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      auto fd = co_await c.create("/f" + std::to_string(i));
      EXPECT_TRUE((co_await c.write(*fd, 4_MiB)).ok());
      EXPECT_TRUE((co_await c.close(*fd)).ok());
    }
    // Capacity 10 MiB holds at most 2 complete 4 MiB files.
    EXPECT_GT(c.stats().evictions, 0u);
    EXPECT_LE(c.stats().resident_bytes, 10_MiB);
    // The oldest file is gone -> miss; the newest is resident -> hit.
    auto old_fd = co_await c.open_read("/f0");
    EXPECT_TRUE((co_await c.read(*old_fd, 4_MiB)).ok());
    co_await c.close(*old_fd);
    EXPECT_EQ(c.stats().hit_bytes, 0u);
    auto new_fd = co_await c.open_read("/f3");
    EXPECT_TRUE((co_await c.read(*new_fd, 4_MiB)).ok());
    co_await c.close(*new_fd);
    EXPECT_EQ(c.stats().hit_bytes, 4_MiB);
  }(*client));
}

TEST(CacheLayerTest, UnlinkAndTruncateInvalidate) {
  CacheFixture f;
  auto client = f.cached_client(64_MiB);
  f.cluster.engine().run_task([](CachedClient& c) -> sim::Task<void> {
    auto fd = co_await c.create("/x");
    EXPECT_TRUE((co_await c.write(*fd, 2_MiB)).ok());
    EXPECT_TRUE((co_await c.close(*fd)).ok());
    EXPECT_EQ(c.stats().resident_bytes, 2_MiB);
    // Recreate (truncate) invalidates the stale entry.
    auto fd2 = co_await c.create("/x");
    EXPECT_TRUE((co_await c.write(*fd2, 1_MiB)).ok());
    EXPECT_TRUE((co_await c.close(*fd2)).ok());
    EXPECT_EQ(c.stats().resident_bytes, 1_MiB);
    // Unlink drops it entirely.
    EXPECT_TRUE((co_await c.unlink("/x")).ok());
    EXPECT_EQ(c.stats().resident_bytes, 0u);
  }(*client));
}

TEST(CacheLayerTest, MissPopulatesForNextReader) {
  CacheFixture f;
  auto client = f.cached_client(64_MiB);
  f.cluster.engine().run_task([](CachedClient& c) -> sim::Task<void> {
    auto fd = co_await c.create("/warm");
    EXPECT_TRUE((co_await c.write(*fd, 4_MiB)).ok());
    EXPECT_TRUE((co_await c.close(*fd)).ok());
    // Invalidate by recreating a different file and evicting... simpler:
    // read twice; first may hit (write-through populated). Unlink+rewrite
    // via inner to force a cold entry is covered above; here verify the
    // second read is a hit even if the first was a miss.
    auto r1 = co_await c.open_read("/warm");
    EXPECT_TRUE((co_await c.read(*r1, 4_MiB)).ok());
    co_await c.close(*r1);
    const uint64_t hits_after_first = c.stats().hit_bytes;
    auto r2 = co_await c.open_read("/warm");
    EXPECT_TRUE((co_await c.read(*r2, 4_MiB)).ok());
    co_await c.close(*r2);
    EXPECT_EQ(c.stats().hit_bytes, hits_after_first + 4_MiB);
  }(*client));
}

}  // namespace
}  // namespace nvmecr::nvmecr_rt
