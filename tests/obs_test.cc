// Tests of the observability layer: metric primitives, the registry's
// snapshot formats, RunReport flag parsing, and end-to-end instrumented
// CoMD runs (span coverage across subsystems, counter tracks, snapshot
// determinism across identical simulations).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "nvmecr/cluster.h"
#include "nvmecr/runtime.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/run_report.h"
#include "simcore/engine.h"
#include "simcore/profile.h"
#include "simcore/trace.h"
#include "workloads/comd.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;
using nvmecr_rt::RuntimeConfig;
using nvmecr_rt::Scheduler;
using workloads::ComdDriver;
using workloads::ComdParams;

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

TEST(CounterTest, AccumulatesMonotonically) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

TEST(GaugeTest, TracksValueAndHighWater) {
  obs::Gauge g;
  g.set(0, 3.0);
  g.add(100, 2.0);
  g.add(200, -4.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
}

TEST(GaugeTest, TimelineRecordsDistinctTimes) {
  obs::Gauge g;
  g.set(0, 1.0);
  g.set(1000, 2.0);
  g.set(2000, 3.0);
  ASSERT_EQ(g.timeline().size(), 3u);
  EXPECT_EQ(g.timeline()[1].at, 1000);
  EXPECT_DOUBLE_EQ(g.timeline()[2].value, 3.0);
}

TEST(GaugeTest, ThrottlesToBoundedTimelineKeepingExactMax) {
  obs::Gauge g;
  // Far more updates than the point cap; the peak lands mid-stream.
  for (int i = 0; i < 100000; ++i) {
    const double v = (i == 54321) ? 1e9 : static_cast<double>(i % 17);
    g.set(static_cast<SimTime>(i) * 10, v);
  }
  EXPECT_LE(g.timeline().size(), 4096u);
  EXPECT_GT(g.timeline().size(), 0u);
  EXPECT_DOUBLE_EQ(g.max(), 1e9);  // exact despite decimation
  // Live value is the last update regardless of sampling.
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(99999 % 17));
  // Timeline stays time-ordered after decimation.
  for (size_t i = 1; i < g.timeline().size(); ++i) {
    EXPECT_LT(g.timeline()[i - 1].at, g.timeline()[i].at);
  }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(HistogramTest, MomentsAreExact) {
  obs::Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, PercentilesExactAtExtremesBucketedBetween) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  // Log2 buckets: p50 is approximate but must land within a factor of 2.
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 1000.0);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, CreateOnFirstUseWithStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("a.b");
  EXPECT_EQ(reg.counter("a.b"), c);  // same object on re-lookup
  c->add(7);
  EXPECT_EQ(reg.find_counter("a.b")->value(), 7u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("a.b"), nullptr);  // kinds are separate spaces
  reg.gauge("g")->set(0, 1.0);
  reg.histogram("h")->add(5.0);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, CsvAndJsonSnapshotsContainAllKinds) {
  obs::MetricsRegistry reg;
  reg.counter("io.cmds")->add(3);
  reg.gauge("io.depth")->set(1000, 2.0);
  reg.histogram("io.lat_ns")->add(4096.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("kind,name,count,value,mean,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,io.cmds,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,io.depth,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,io.lat_ns,"), std::string::npos);
  EXPECT_NE(csv.find("sample,io.depth,1000,"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"io.cmds\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ExportsGaugesAsCounterTracks) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.gauge("nvmf.node16.qpair_depth");
  g->set(0, 1.0);
  g->set(1000, 3.0);
  sim::TraceCollector trace;
  reg.export_gauges_to_trace(trace);
  EXPECT_EQ(trace.size(), 2u);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("qpair_depth"), std::string::npos);
}

// ---------------------------------------------------------------------
// RunReport flag parsing
// ---------------------------------------------------------------------

TEST(RunReportTest, ParsesProfileAndFlightFlags) {
  const char* argv1[] = {"prog", "--profile", "-", "--flight=64"};
  obs::RunReport r = obs::RunReport::from_args(4, const_cast<char**>(argv1));
  EXPECT_TRUE(r.profile_enabled());
  EXPECT_TRUE(r.flight_enabled());
  EXPECT_FALSE(r.trace_enabled());  // flight arms the ring, not the file
  obs::Observer o = r.observer();
  EXPECT_NE(o.dispatch, nullptr);
  EXPECT_NE(o.epoch, nullptr);
  ASSERT_NE(o.trace, nullptr);  // --flight wires the collector in
  EXPECT_TRUE(r.trace().is_ring());
  EXPECT_TRUE(o.any());

  // --profile alone: profilers wired, no trace collector.
  const char* argv2[] = {"prog", "--profile=report.txt"};
  obs::RunReport r2 = obs::RunReport::from_args(2, const_cast<char**>(argv2));
  EXPECT_TRUE(r2.profile_enabled());
  EXPECT_FALSE(r2.flight_enabled());
  EXPECT_EQ(r2.observer().trace, nullptr);
  EXPECT_NE(r2.observer().dispatch, nullptr);
}

TEST(RunReportTest, ParsesBothFlagForms) {
  const char* argv1[] = {"prog", "--trace", "t.json", "--metrics=m.csv"};
  obs::RunReport r1 = obs::RunReport::from_args(
      4, const_cast<char**>(argv1));
  EXPECT_TRUE(r1.trace_enabled());
  EXPECT_TRUE(r1.metrics_enabled());
  EXPECT_NE(r1.observer().trace, nullptr);
  EXPECT_NE(r1.observer().metrics, nullptr);

  const char* argv2[] = {"prog"};
  obs::RunReport r2 = obs::RunReport::from_args(
      1, const_cast<char**>(argv2));
  EXPECT_FALSE(r2.enabled());
  EXPECT_EQ(r2.observer().trace, nullptr);
  EXPECT_EQ(r2.observer().metrics, nullptr);
  EXPECT_FALSE(r2.observer().any());
}

// ---------------------------------------------------------------------
// End-to-end: instrumented CoMD runs
// ---------------------------------------------------------------------

ComdParams tiny_params() {
  ComdParams p;
  p.nranks = 28;
  p.procs_per_node = 28;
  p.atoms_per_rank = 4096;
  p.bytes_per_atom = 512;  // 2 MiB per rank per checkpoint
  p.checkpoints = 3;
  p.compute_per_period = 20 * kMillisecond;
  p.io_chunk = 1_MiB;
  return p;
}

// Runs one instrumented job into the provided collector/registry.
void run_instrumented(sim::TraceCollector* trace,
                      obs::MetricsRegistry* metrics) {
  Cluster cluster;
  obs::Observer o;
  o.trace = trace;
  o.metrics = metrics;
  cluster.install_observer(o);
  Scheduler sched(cluster);
  const ComdParams params = tiny_params();
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok());
}

TEST(ObservedRunTest, SpansCoverAllSubsystemsAndMetricsAreLive) {
  sim::TraceCollector trace;
  obs::MetricsRegistry metrics;
  run_instrumented(&trace, &metrics);
  ASSERT_GT(trace.size(), 0u);

  const std::string json = trace.to_json();
  // Spans from every layer of the checkpoint path.
  for (const char* track :
       {"runtime/rank0", "oplog/rank0", "microfs/rank0", "nvmf/node",
        "ssd/storage-nvme"}) {
    EXPECT_NE(json.find(track), std::string::npos) << track;
  }
  // Representative operations along the path.
  for (const char* op : {"\"name\":\"write\"", "\"name\":\"fsync\"",
                         "\"name\":\"append\"",
                         "\"name\":\"hugeblock_write\""}) {
    EXPECT_NE(json.find(op), std::string::npos) << op;
  }

  // The registry saw traffic from each subsystem.
  ASSERT_NE(metrics.find_counter("microfs.oplog.appended"), nullptr);
  EXPECT_GT(metrics.find_counter("microfs.oplog.appended")->value(), 0u);
  ASSERT_NE(metrics.find_counter("microfs.pool.allocs"), nullptr);
  EXPECT_GT(metrics.find_counter("microfs.pool.allocs")->value(), 0u);
  ASSERT_NE(metrics.find_histogram("runtime.write_ns"), nullptr);
  EXPECT_GT(metrics.find_histogram("runtime.write_ns")->count(), 0u);

  // qpair depth: some NVMf target saw inflight commands.
  double qpair_max = 0;
  bool found_qpair = false;
  for (uint32_t node = 0; node < 64; ++node) {
    const obs::Gauge* g = metrics.find_gauge(
        "nvmf.node" + std::to_string(node) + ".qpair_depth");
    if (g != nullptr) {
      found_qpair = true;
      if (g->max() > qpair_max) qpair_max = g->max();
    }
  }
  EXPECT_TRUE(found_qpair);
  EXPECT_GT(qpair_max, 0.0);

  // Gauge export yields counter tracks in the final trace.
  const size_t before = trace.size();
  metrics.export_gauges_to_trace(trace);
  EXPECT_GT(trace.size(), before);
  EXPECT_NE(trace.to_json().find("\"ph\":\"C\""), std::string::npos);
}

TEST(ObservedRunTest, SnapshotsAreDeterministicAcrossIdenticalRuns) {
  sim::TraceCollector t1, t2;
  obs::MetricsRegistry m1, m2;
  run_instrumented(&t1, &m1);
  run_instrumented(&t2, &m2);
  EXPECT_EQ(t1.size(), t2.size());
  EXPECT_EQ(t1.to_json(), t2.to_json());
  EXPECT_EQ(m1.to_csv(), m2.to_csv());
  EXPECT_EQ(m1.to_json(), m2.to_json());
}

TEST(ObservedRunTest, UninstrumentedRunRecordsNothing) {
  // The null observer must keep the whole stack silent: same job, no
  // observer installed, then prove the trace/registry stayed empty by
  // running with an all-null Observer explicitly installed.
  Cluster cluster;
  cluster.install_observer(obs::Observer{});
  Scheduler sched(cluster);
  const ComdParams params = tiny_params();
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok());
}

// ---------------------------------------------------------------------
// TraceCollector: JSON escaping + flight-recorder ring
// ---------------------------------------------------------------------

TEST(TraceCollectorTest, EscapesHostileNamesInJson) {
  sim::TraceCollector t;
  t.add_span("tr\"ack", "na\nme\"q\\", 0, 1000);
  t.add_instant("plain", "tab\there", 2000);
  const std::string json = t.to_json();
  // The hostile span name survives as valid JSON escapes.
  EXPECT_NE(json.find("na\\nme\\\"q\\\\"), std::string::npos);
  EXPECT_NE(json.find("tr\\\"ack"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  // No raw quote from the name leaks into the output unescaped: every
  // '"' is either a JSON delimiter or preceded by a backslash, so the
  // raw sequences from the input must be gone.
  EXPECT_EQ(json.find("na\nme"), std::string::npos);
  EXPECT_EQ(json.find("tr\"ack"), std::string::npos);
}

TEST(TraceCollectorTest, FlightRingKeepsNewestEventsInOrder) {
  sim::TraceCollector t;
  t.set_ring_capacity(4);
  EXPECT_TRUE(t.is_ring());
  for (int i = 0; i < 10; ++i) {
    t.add_instant("ring", "ev" + std::to_string(i),
                  static_cast<SimTime>(i) * 100);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_added(), 10u);
  const std::string json = t.to_json();
  // Only the newest four survive, oldest-first.
  EXPECT_EQ(json.find("\"ev5\""), std::string::npos);
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("\"ev" + std::to_string(i) + "\""),
              std::string::npos) << i;
  }
  EXPECT_LT(json.find("\"ev6\""), json.find("\"ev9\""));

  // dump_tail shows the newest `max` events and flags the truncation.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.dump_tail(f, 3);
  std::rewind(f);
  char buf[4096] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string text(buf, n);
  EXPECT_NE(text.find("ev9"), std::string::npos);
  EXPECT_NE(text.find("ev7"), std::string::npos);
  EXPECT_EQ(text.find("ev6"), std::string::npos);  // beyond the tail
  EXPECT_NE(text.find("earlier"), std::string::npos);

  // Leaving ring mode resets the collector to unbounded collection.
  t.set_ring_capacity(0);
  EXPECT_FALSE(t.is_ring());
  EXPECT_EQ(t.size(), 0u);
  t.add_instant("ring", "fresh", 0);
  EXPECT_EQ(t.size(), 1u);
}

// ---------------------------------------------------------------------
// DispatchProfiler
// ---------------------------------------------------------------------

TEST(DispatchProfilerTest, ChargesDispatchesToScopedCostCenters) {
  sim::Engine eng;
  sim::DispatchProfiler prof;
  eng.set_profiler(&prof);
  eng.set_profile_hooks(true);
  const uint16_t tag = eng.profile_tag("unit/work");
  ASSERT_NE(tag, 0);
  EXPECT_EQ(eng.profile_tag("unit/work"), tag);  // interning is stable

  eng.run_task([](sim::Engine& e, uint16_t t) -> sim::Task<void> {
    sim::ProfileTagScope scope(e, t);
    for (int i = 0; i < 100; ++i) co_await e.yield();
    co_await e.delay(1000);
  }(eng, tag));
  prof.finish();

  bool found = false;
  for (const auto& c : prof.ranked()) {
    if (c.name != "unit/work") continue;
    found = true;
    // 100 yields + 1 delay resume all carry the scope's tag.
    EXPECT_GE(c.dispatches, 101u);
    EXPECT_GT(c.ring_hits, 0u);  // yields are same-time: now-ring served
  }
  EXPECT_TRUE(found);
  EXPECT_GT(prof.total_dispatches(), 0u);
  EXPECT_GT(prof.frame_allocations(), 0u);
  const std::string table = prof.table(5);
  EXPECT_NE(table.find("unit/work"), std::string::npos);

  // reset() drops samples but keeps interned tags valid.
  prof.reset();
  EXPECT_EQ(prof.total_dispatches(), 0u);
  EXPECT_EQ(eng.profile_tag("unit/work"), tag);
}

// ---------------------------------------------------------------------
// EpochProfiler
// ---------------------------------------------------------------------

TEST(EpochProfilerTest, PhaseStatsFindTheStraggler) {
  obs::EpochProfiler ep;
  using P = obs::EpochProfiler::Phase;
  // Epoch 0, serialize: rank 3 takes 4x the median.
  for (uint32_t r = 0; r < 4; ++r) {
    ep.record_rank(r, 0, P::kSerialize, r == 3 ? 400 : 100);
  }
  ep.record_rank(1, 1, P::kFabric, 50);
  EXPECT_EQ(ep.epoch_count(), 2u);
  EXPECT_EQ(ep.rank_count(), 4u);

  const auto st = ep.phase_stats(0, P::kSerialize);
  EXPECT_EQ(st.total_ns, 700u);
  EXPECT_EQ(st.median_ns, 100u);
  EXPECT_EQ(st.max_ns, 400u);
  EXPECT_EQ(st.max_rank, 3u);
  EXPECT_EQ(st.ranks, 4u);
  EXPECT_DOUBLE_EQ(st.straggler(), 4.0);
  EXPECT_EQ(ep.phase_total_ns(1, P::kFabric), 50u);
  EXPECT_EQ(ep.phase_total_ns(7, P::kFabric), 0u);  // out of range

  const std::string table = ep.drilldown_table();
  EXPECT_NE(table.find("serialize"), std::string::npos);
  EXPECT_NE(table.find("fabric"), std::string::npos);
  EXPECT_NE(table.find("straggler"), std::string::npos);
  EXPECT_NE(table.find("4.00x"), std::string::npos);
}

TEST(EpochProfilerTest, DecodesRankEpochAndMetaBitFromEngineContext) {
  sim::Engine eng;
  eng.set_profile_hooks(true);
  obs::EpochProfiler ep;
  using P = obs::EpochProfiler::Phase;

  ep.set_rank_epoch(2, 5);
  eng.set_profile_ctx(3u << sim::profile_ctx::kRankShift);  // rank 2
  ep.record(eng, P::kFabric, 100);
  EXPECT_EQ(ep.rank_ns(5, P::kFabric, 2), 100u);

  // The meta bit redirects nested device phases to the oplog phase.
  eng.set_profile_ctx((3u << sim::profile_ctx::kRankShift) |
                      sim::profile_ctx::kMetaBit);
  ep.record(eng, P::kFlash, 70);
  EXPECT_EQ(ep.rank_ns(5, P::kOplog, 2), 70u);
  EXPECT_EQ(ep.phase_total_ns(5, P::kFlash), 0u);

  // No rank stamped: the sample is dropped, not misattributed.
  eng.set_profile_ctx(0);
  ep.record(eng, P::kFabric, 9);
  EXPECT_EQ(ep.phase_total_ns(5, P::kFabric), 100u);
}

// ---------------------------------------------------------------------
// End-to-end: profiled CoMD run
// ---------------------------------------------------------------------

TEST(ObservedRunTest, ProfiledRunAttributesDispatchAndEpochPhases) {
  Cluster cluster;
  sim::DispatchProfiler prof;
  obs::EpochProfiler ep;
  obs::Observer o;
  o.dispatch = &prof;
  o.epoch = &ep;
  cluster.install_observer(o);
  Scheduler sched(cluster);
  const ComdParams params = tiny_params();
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok());
  prof.finish();

  // Every instrumented layer shows up as a dispatch cost center.
  std::set<std::string> names;
  for (const auto& c : prof.ranked()) names.insert(c.name);
  for (const char* want : {"comd/compute", "comd/barrier", "microfs/data",
                           "nvmf", "hw/ssd"}) {
    EXPECT_TRUE(names.count(want)) << want;
  }
  EXPECT_GT(prof.total_dispatches(), 0u);
  EXPECT_LE(prof.total_dispatches(), cluster.engine().events_dispatched());
  EXPECT_GT(prof.frame_allocations(), 0u);
  EXPECT_GT(prof.total_wall_ns(), 0u);

  // Epoch drilldown: one epoch per checkpoint plus the restart pass,
  // with every rank represented.
  using P = obs::EpochProfiler::Phase;
  EXPECT_EQ(ep.epoch_count(), params.checkpoints + 1);
  EXPECT_EQ(ep.rank_count(), params.nranks);
  // Checkpoint epoch 0 decomposes into app + device phases.
  for (P p : {P::kSerialize, P::kFabric, P::kBarrier}) {
    EXPECT_GT(ep.phase_total_ns(0, p), 0u) << static_cast<int>(p);
  }
  // Device-side and metadata phases fire somewhere in the run (summed
  // across epochs: queueing can be negligible in any single epoch).
  for (P p : {P::kOplog, P::kTargetQueue, P::kFlash}) {
    uint64_t total = 0;
    for (uint32_t e = 0; e < ep.epoch_count(); ++e) {
      total += ep.phase_total_ns(e, p);
    }
    EXPECT_GT(total, 0u) << static_cast<int>(p);
  }
  const auto st = ep.phase_stats(0, P::kSerialize);
  EXPECT_EQ(st.ranks, params.nranks);
  EXPECT_GE(st.straggler(), 1.0);
  const std::string table = ep.drilldown_table();
  EXPECT_NE(table.find("serialize"), std::string::npos);
  EXPECT_NE(table.find("barrier"), std::string::npos);
}

TEST(ObservedRunTest, ProfiledRunMatchesUnprofiledMetrics) {
  // Arming the profilers must not change simulated behavior: identical
  // jobs with and without profiling produce identical metrics snapshots.
  sim::TraceCollector t1;
  obs::MetricsRegistry m1;
  run_instrumented(&t1, &m1);

  Cluster cluster;
  sim::TraceCollector t2;
  obs::MetricsRegistry m2;
  sim::DispatchProfiler prof;
  obs::EpochProfiler ep;
  obs::Observer o;
  o.trace = &t2;
  o.metrics = &m2;
  o.dispatch = &prof;
  o.epoch = &ep;
  cluster.install_observer(o);
  Scheduler sched(cluster);
  const ComdParams params = tiny_params();
  auto job = sched.allocate(params.nranks, 28, 64_MiB, 2);
  ASSERT_TRUE(job.ok());
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 64;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  ASSERT_TRUE(m.ok());

  EXPECT_EQ(t1.to_json(), t2.to_json());
  EXPECT_EQ(m1.to_csv(), m2.to_csv());
}

}  // namespace
}  // namespace nvmecr
