// Failure-injection tests: media errors, whole-device loss, silent
// corruption of on-device structures, and torn internal-state
// checkpoints. The runtime's guarantee (§III-E): "a completely written
// checkpoint file will never hold corrupted data and can safely be used
// for recovery" — errors must surface as errors, never as silent bad
// data.
#include <gtest/gtest.h>

#include "hw/nvme_ssd.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "nvmecr/runtime.h"
#include "simcore/engine.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;

struct SsdFsFixture {
  sim::Engine eng;
  hw::NvmeSsd ssd{eng, hw::SsdSpec{.capacity = 8_GiB}};
  uint32_t nsid = ssd.create_namespace(1_GiB).value();
  uint32_t queue = ssd.alloc_queue().value();
  std::unique_ptr<hw::BlockDevice> dev = ssd.open_queue(nsid, queue);

  std::unique_ptr<microfs::MicroFs> format(microfs::Options options = {}) {
    return eng.run_task(microfs::MicroFs::format(eng, *dev, options)).value();
  }
};

TEST(FaultInjectionTest, InjectedIoErrorPropagatesThroughWrite) {
  SsdFsFixture f;
  auto fs = f.format();
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE(fd.ok());
    fx.ssd.inject_io_errors(1);
    // The next device command (the data write) fails; microfs surfaces it.
    Status s = co_await m.write_tagged(*fd, 1_MiB);
    EXPECT_EQ(s.code(), ErrorCode::kIoError);
    // After the injected error drains, writes work again.
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
  }(f, *fs));
}

TEST(FaultInjectionTest, FailedDeviceErrorsEverything) {
  SsdFsFixture f;
  auto fs = f.format();
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    fx.ssd.fail_device();
    EXPECT_EQ((co_await m.write_tagged(*fd, 64_KiB)).code(),
              ErrorCode::kIoError);
    // Metadata ops also reach the device (log append) and fail.
    EXPECT_EQ((co_await m.creat("/b")).status().code(), ErrorCode::kIoError);
  }(f, *fs));
}

TEST(FaultInjectionTest, CorruptedLogRecordsAreSkippedOnRecovery) {
  SsdFsFixture f;
  microfs::Options options;
  options.coalesce_window = 0;
  {
    auto fs = f.format(options);
    f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      for (int i = 0; i < 4; ++i) {
        auto fd = co_await m.creat("/f" + std::to_string(i));
        EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
        co_await m.close(*fd);
      }
    }(*fs));
  }
  // Smash a byte in the middle of the log region (starts at 4096; each
  // slot is 192 B): records with bad CRCs are ignored, the rest replay.
  ASSERT_TRUE(f.ssd.corrupt_media(f.nsid, 4096 + 2 * 192 + 10, 4).ok());
  auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
  ASSERT_TRUE(fs.ok());
  // Some records were lost, but recovery is consistent: whatever files
  // survive verify cleanly.
  auto names = (*fs)->readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_LT(names->size(), 4u);
  f.eng.run_task([](microfs::MicroFs& m,
                    std::vector<std::string> survivors) -> sim::Task<void> {
    for (const auto& n : survivors) {
      EXPECT_TRUE((co_await m.verify_tagged("/" + n)).ok()) << n;
    }
  }(**fs, *names));
}

TEST(FaultInjectionTest, TornStateCheckpointFallsBackToOlderRegion) {
  SsdFsFixture f;
  microfs::Options options;
  options.auto_checkpoint = false;
  {
    auto fs = f.format(options);
    f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      auto fd = co_await m.creat("/before");
      EXPECT_TRUE((co_await m.write_tagged(*fd, 128_KiB)).ok());
      co_await m.close(*fd);
      // Format wrote the epoch-2 checkpoint (region A); this one is
      // epoch 3 (region B) and becomes the newest.
      EXPECT_TRUE((co_await m.checkpoint_state()).ok());
      // Post-checkpoint tail lives only in the log (epoch-3 records).
      auto fd2 = co_await m.creat("/after");
      EXPECT_TRUE((co_await m.write_tagged(*fd2, 64_KiB)).ok());
      co_await m.close(*fd2);
    }(*fs));
  }
  // Corrupt the NEWEST checkpoint region. Geometry: log at 4096 with
  // 4096 slots of 192 B (rounded to 4 KiB); epoch 3 is odd -> region B.
  const uint64_t log_bytes = round_up(4096ull * 192, 4096);
  const uint64_t ckpt_bytes = [&] {
    // Mirror compute_geometry's auto sizing for this namespace.
    const uint64_t upper_blocks = f.dev->capacity() / (32_KiB);
    return round_up(std::max<uint64_t>(256_KiB, 64_KiB + 16 * upper_blocks),
                    4096);
  }();
  const uint64_t region_b = 4096 + log_bytes + ckpt_bytes;
  ASSERT_TRUE(f.ssd.corrupt_media(f.nsid, region_b + 8, 16).ok());

  auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
  ASSERT_TRUE(fs.ok());
  // Fallback to the epoch-2 checkpoint + replay of the epoch>=2 log tail
  // still reconstructs everything.
  EXPECT_TRUE((*fs)->stat("/before").ok());
  EXPECT_TRUE((*fs)->stat("/after").ok());
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged("/before")).ok());
    EXPECT_TRUE((co_await m.verify_tagged("/after")).ok());
  }(**fs));
}

TEST(FaultInjectionTest, VerifyDetectsDirectDataCorruption) {
  // Deterministic variant: corrupt the exact data region start.
  sim::Engine eng;
  hw::RamDevice dev(64_MiB, 4096);
  microfs::Options options;
  auto fs = eng.run_task(microfs::MicroFs::format(eng, dev, options)).value();
  eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/ckpt");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
    EXPECT_TRUE((co_await m.verify_tagged("/ckpt")).ok());
  }(*fs));
  // Overwrite a wide swath covering the front of the data region with a
  // different pattern (firmware-level corruption); the file's hugeblocks
  // live there.
  eng.run_task([](hw::RamDevice& d) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await d.write_tagged(1_MiB, 48_MiB, /*seed=*/0xbad)).ok());
  }(dev));
  eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    Status s = co_await m.verify_tagged("/ckpt");
    EXPECT_EQ(s.code(), ErrorCode::kCorruption);
  }(*fs));
}

}  // namespace
}  // namespace nvmecr
