// Failure-injection tests: media errors, whole-device loss, silent
// corruption of on-device structures, and torn internal-state
// checkpoints. The runtime's guarantee (§III-E): "a completely written
// checkpoint file will never hold corrupted data and can safely be used
// for recovery" — errors must surface as errors, never as silent bad
// data.
#include <gtest/gtest.h>

#include "hw/nvme_ssd.h"
#include "hw/ram_device.h"
#include "microfs/microfs.h"
#include "nvmecr/runtime.h"
#include "redundancy/engine.h"
#include "simcore/engine.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;

struct SsdFsFixture {
  sim::Engine eng;
  hw::NvmeSsd ssd{eng, hw::SsdSpec{.capacity = 8_GiB}};
  uint32_t nsid = ssd.create_namespace(1_GiB).value();
  uint32_t queue = ssd.alloc_queue().value();
  std::unique_ptr<hw::BlockDevice> dev = ssd.open_queue(nsid, queue);

  std::unique_ptr<microfs::MicroFs> format(microfs::Options options = {}) {
    return eng.run_task(microfs::MicroFs::format(eng, *dev, options)).value();
  }
};

TEST(FaultInjectionTest, InjectedIoErrorPropagatesThroughWrite) {
  SsdFsFixture f;
  auto fs = f.format();
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE(fd.ok());
    fx.ssd.inject_io_errors(1);
    // The next device command (the data write) fails; microfs surfaces it.
    Status s = co_await m.write_tagged(*fd, 1_MiB);
    EXPECT_EQ(s.code(), ErrorCode::kIoError);
    // After the injected error drains, writes work again.
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
  }(f, *fs));
}

TEST(FaultInjectionTest, FailedDeviceErrorsEverything) {
  SsdFsFixture f;
  auto fs = f.format();
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    fx.ssd.fail_device();
    EXPECT_EQ((co_await m.write_tagged(*fd, 64_KiB)).code(),
              ErrorCode::kIoError);
    // Metadata ops also reach the device (log append) and fail.
    EXPECT_EQ((co_await m.creat("/b")).status().code(), ErrorCode::kIoError);
  }(f, *fs));
}

TEST(FaultInjectionTest, CorruptedLogRecordsAreSkippedOnRecovery) {
  SsdFsFixture f;
  microfs::Options options;
  options.coalesce_window = 0;
  {
    auto fs = f.format(options);
    f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      for (int i = 0; i < 4; ++i) {
        auto fd = co_await m.creat("/f" + std::to_string(i));
        EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
        co_await m.close(*fd);
      }
    }(*fs));
  }
  // Smash a byte in the middle of the log region (starts at 4096; each
  // slot is 192 B): records with bad CRCs are ignored, the rest replay.
  ASSERT_TRUE(f.ssd.corrupt_media(f.nsid, 4096 + 2 * 192 + 10, 4).ok());
  auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
  ASSERT_TRUE(fs.ok());
  // Some records were lost, but recovery is consistent: whatever files
  // survive verify cleanly.
  auto names = (*fs)->readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_LT(names->size(), 4u);
  f.eng.run_task([](microfs::MicroFs& m,
                    std::vector<std::string> survivors) -> sim::Task<void> {
    for (const auto& n : survivors) {
      EXPECT_TRUE((co_await m.verify_tagged("/" + n)).ok()) << n;
    }
  }(**fs, *names));
}

TEST(FaultInjectionTest, TornStateCheckpointFallsBackToOlderRegion) {
  SsdFsFixture f;
  microfs::Options options;
  options.auto_checkpoint = false;
  {
    auto fs = f.format(options);
    f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      auto fd = co_await m.creat("/before");
      EXPECT_TRUE((co_await m.write_tagged(*fd, 128_KiB)).ok());
      co_await m.close(*fd);
      // Format wrote the epoch-2 checkpoint (region A); this one is
      // epoch 3 (region B) and becomes the newest.
      EXPECT_TRUE((co_await m.checkpoint_state()).ok());
      // Post-checkpoint tail lives only in the log (epoch-3 records).
      auto fd2 = co_await m.creat("/after");
      EXPECT_TRUE((co_await m.write_tagged(*fd2, 64_KiB)).ok());
      co_await m.close(*fd2);
    }(*fs));
  }
  // Corrupt the NEWEST checkpoint region. Geometry: log at 4096 with
  // 4096 slots of 192 B (rounded to 4 KiB); epoch 3 is odd -> region B.
  const uint64_t log_bytes = round_up(4096ull * 192, 4096);
  const uint64_t ckpt_bytes = [&] {
    // Mirror compute_geometry's auto sizing for this namespace.
    const uint64_t upper_blocks = f.dev->capacity() / (32_KiB);
    return round_up(std::max<uint64_t>(256_KiB, 64_KiB + 16 * upper_blocks),
                    4096);
  }();
  const uint64_t region_b = 4096 + log_bytes + ckpt_bytes;
  ASSERT_TRUE(f.ssd.corrupt_media(f.nsid, region_b + 8, 16).ok());

  auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
  ASSERT_TRUE(fs.ok());
  // Fallback to the epoch-2 checkpoint + replay of the epoch>=2 log tail
  // still reconstructs everything.
  EXPECT_TRUE((*fs)->stat("/before").ok());
  EXPECT_TRUE((*fs)->stat("/after").ok());
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged("/before")).ok());
    EXPECT_TRUE((co_await m.verify_tagged("/after")).ok());
  }(**fs));
}

TEST(FaultInjectionTest, VerifyDetectsDirectDataCorruption) {
  // Deterministic variant: corrupt the exact data region start.
  sim::Engine eng;
  hw::RamDevice dev(64_MiB, 4096);
  microfs::Options options;
  auto fs = eng.run_task(microfs::MicroFs::format(eng, dev, options)).value();
  eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/ckpt");
    EXPECT_TRUE((co_await m.write_tagged(*fd, 1_MiB)).ok());
    co_await m.close(*fd);
    EXPECT_TRUE((co_await m.verify_tagged("/ckpt")).ok());
  }(*fs));
  // Overwrite a wide swath covering the front of the data region with a
  // different pattern (firmware-level corruption); the file's hugeblocks
  // live there.
  eng.run_task([](hw::RamDevice& d) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await d.write_tagged(1_MiB, 48_MiB, /*seed=*/0xbad)).ok());
  }(dev));
  eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    Status s = co_await m.verify_tagged("/ckpt");
    EXPECT_EQ(s.code(), ErrorCode::kCorruption);
  }(*fs));
}

TEST(FaultInjectionTest, MultiErrorBurstFailsEachOpThenDrains) {
  SsdFsFixture f;
  auto fs = f.format();
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE(fd.ok());
    // A burst of three media errors: each op's first device command (the
    // data write) consumes one injection and aborts the op, so exactly
    // the next three writes fail, then service resumes.
    fx.ssd.inject_io_errors(3);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ((co_await m.write_tagged(*fd, 256_KiB)).code(),
                ErrorCode::kIoError)
          << "burst op " << i;
    }
    EXPECT_TRUE((co_await m.write_tagged(*fd, 256_KiB)).ok());
    EXPECT_TRUE((co_await m.close(*fd)).ok());
    // The namespace only reflects the successful write.
    EXPECT_TRUE((co_await m.verify_tagged("/a")).ok());
  }(f, *fs));
  EXPECT_EQ(fs->stat("/a")->size, 256_KiB);
}

TEST(FaultInjectionTest, GroupCommitDrainErrorRetainsDirtySlots) {
  SsdFsFixture f;
  microfs::Options options;
  options.coalesce_window = 64;
  options.auto_checkpoint = false;
  auto fs = f.format(options);
  f.eng.run_task([](SsdFsFixture& fx, microfs::MicroFs& m) -> sim::Task<void> {
    auto fd = co_await m.creat("/a");
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    // Coalesced extension: the WRITE record is updated in DRAM and its
    // slot rewrite deferred to the next flush point.
    EXPECT_TRUE((co_await m.write_tagged(*fd, 64_KiB)).ok());
    EXPECT_GE(m.log_dirty_slots(), 1u);

    // The drain write is the first device command fsync issues; fail it.
    fx.ssd.inject_io_errors(1);
    EXPECT_EQ((co_await m.fsync(*fd)).code(), ErrorCode::kIoError);
    // The failed rewrite must stay dirty — dropping it would let a later
    // crash replay the stale (shorter) record silently.
    EXPECT_GE(m.log_dirty_slots(), 1u);

    // Retry succeeds and clears the dirty set.
    EXPECT_TRUE((co_await m.fsync(*fd)).ok());
    EXPECT_EQ(m.log_dirty_slots(), 0u);
    EXPECT_TRUE((co_await m.close(*fd)).ok());
  }(f, *fs));
  // Crash/recover: the retried rewrite is what replays.
  fs.reset();
  auto rec = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->stat("/a")->size, 128_KiB);
  f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
    EXPECT_TRUE((co_await m.verify_tagged("/a")).ok());
  }(**rec));
}

TEST(FaultInjectionTest, XorParityWriteErrorDegradesNotCorrupts) {
  nvmecr_rt::ClusterSpec spec;
  spec.compute_nodes = 4;
  spec.storage_nodes = 5;
  spec.storage_racks = 5;
  nvmecr_rt::Cluster cluster(spec);
  nvmecr_rt::Scheduler sched(cluster);
  auto job = sched.allocate(/*nranks=*/4, /*procs_per_node=*/1, 256_MiB,
                            /*ssds=*/4);
  ASSERT_TRUE(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, {});
  redundancy::RedundancyOptions opts;
  opts.scheme = redundancy::Scheme::kXor;
  opts.xor_set_size = 4;
  auto dep =
      redundancy::deploy_redundancy(cluster, sched, primary, *job, opts);
  ASSERT_TRUE(dep.ok()) << dep.status().to_string();
  redundancy::RedundantSystem& sys = *dep->system;

  std::vector<std::unique_ptr<baselines::StorageClient>> clients;
  cluster.engine().run_task(
      [](nvmecr_rt::Cluster& cl, const nvmecr_rt::JobAllocation& store_job,
         redundancy::RedundantSystem& s,
         std::vector<std::unique_ptr<baselines::StorageClient>>& cs)
          -> sim::Task<void> {
        std::vector<int> fds;
        for (uint32_t r = 0; r < 4; ++r) {
          auto c = co_await s.connect(static_cast<int>(r));
          NVMECR_CHECK(c.ok());
          cs.push_back(std::move(*c));
          auto fd = co_await cs.back()->create("/ckpt0");
          EXPECT_TRUE(fd.ok());
          EXPECT_TRUE((co_await cs.back()->write(*fd, 8_MiB)).ok());
          fds.push_back(*fd);
        }
        // Parity encodes fire once the whole erasure set has closed;
        // poison every store-side SSD so those background writes fail.
        for (fabric::NodeId n : store_job.assignment.ssd_nodes) {
          cl.storage_ssd(cl.storage_ssd_index(n)).inject_io_errors(1000);
        }
        for (uint32_t r = 0; r < 4; ++r) {
          EXPECT_TRUE((co_await cs[r]->close(fds[r])).ok());
        }
        co_await s.quiesce();
      }(cluster, dep->store_job, sys, clients));

  // Clear leftover injections (a store SSD can double as another rank's
  // primary) before exercising the read path.
  for (fabric::NodeId n : dep->store_job.assignment.ssd_nodes) {
    cluster.storage_ssd(cluster.storage_ssd_index(n)).inject_io_errors(0);
  }

  // The checkpoint is degraded (no parity protection), never corrupted:
  // manifests say parity_ok == false and the primary copy still reads.
  EXPECT_GT(sys.degraded_files(), 0u);
  for (uint32_t r = 0; r < 4; ++r) {
    const redundancy::FileManifest* m = sys.manifest(r, "/ckpt0");
    ASSERT_NE(m, nullptr) << "rank " << r;
    EXPECT_TRUE(m->complete) << "rank " << r;
    EXPECT_FALSE(m->parity_ok) << "rank " << r;
  }
  cluster.engine().run_task(
      [](std::vector<std::unique_ptr<baselines::StorageClient>>& cs)
          -> sim::Task<void> {
        auto fd = co_await cs[0]->open_read("/ckpt0");
        EXPECT_TRUE(fd.ok());
        EXPECT_TRUE((co_await cs[0]->read(*fd, 8_MiB)).ok());
        EXPECT_TRUE((co_await cs[0]->close(*fd)).ok());
      }(clients));
}

TEST(FaultInjectionTest, ErrorMidRecoverSurfacesTypedNeverCorrupts) {
  SsdFsFixture f;
  microfs::Options options;
  options.coalesce_window = 0;
  {
    auto fs = f.format(options);
    f.eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      EXPECT_TRUE((co_await m.mkdir("/d")).ok());
      for (int i = 0; i < 6; ++i) {
        auto fd = co_await m.creat("/d/f" + std::to_string(i));
        EXPECT_TRUE(fd.ok());
        EXPECT_TRUE((co_await m.write_tagged(*fd, 96_KiB)).ok());
        EXPECT_TRUE((co_await m.close(*fd)).ok());
      }
    }(*fs));
  }
  // Sweep the error over successive device commands of the recovery
  // path (superblock, checkpoint regions, log scan): each attempt must
  // either mount a consistent filesystem or fail with a typed error.
  int failures = 0, successes = 0;
  for (uint32_t k = 0; k < 24; ++k) {
    f.ssd.inject_io_errors(1, /*after=*/k);
    auto fs = f.eng.run_task(microfs::MicroFs::recover(f.eng, *f.dev, options));
    f.ssd.inject_io_errors(0);  // clear any unconsumed injection
    if (!fs.ok()) {
      ++failures;
      const ErrorCode code = fs.status().code();
      EXPECT_TRUE(code == ErrorCode::kIoError ||
                  code == ErrorCode::kCorruption)
          << "k=" << k << ": " << fs.status().to_string();
      continue;
    }
    ++successes;
    // A mount that claims success must be fully consistent.
    auto report = f.eng.run_task((*fs)->fsck());
    ASSERT_TRUE(report.ok()) << "k=" << k;
    EXPECT_TRUE(report->clean()) << "k=" << k << "\n" << report->to_string();
    EXPECT_EQ((*fs)->readdir("/d")->size(), 6u) << "k=" << k;
  }
  // The sweep crossed both regimes.
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

}  // namespace
}  // namespace nvmecr
