// Redundancy engine tests: placement invariants, end-to-end
// recoverability after a failure-domain loss (partner replica and XOR
// decode, both proven byte-identical via the stream digest), the kNone
// fallback to the PFS tier, plus the satellite coverage for the
// multi-level router edges, balancer input validation, and CacheStats
// metrics export.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baselines/models.h"
#include "nvmecr/cache.h"
#include "nvmecr/multilevel.h"
#include "nvmecr/runtime.h"
#include "obs/metrics.h"
#include "redundancy/engine.h"
#include "redundancy/placement.h"
#include "redundancy/reconstruct.h"

namespace nvmecr {
namespace {

using namespace nvmecr::literals;
using redundancy::RecoverySource;
using redundancy::RedundancyOptions;
using redundancy::Scheme;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::Scheduler;

ClusterSpec make_spec(uint32_t storage_nodes, uint32_t storage_racks) {
  ClusterSpec spec;
  spec.compute_nodes = 4;
  spec.storage_nodes = storage_nodes;
  spec.storage_racks = storage_racks;
  return spec;
}

struct RedundancyFixture {
  RedundancyFixture(uint32_t storage_nodes, uint32_t storage_racks)
      : cluster(make_spec(storage_nodes, storage_racks)), sched(cluster) {}

  Cluster cluster;
  Scheduler sched;

  JobAllocation alloc(uint32_t nranks, uint32_t ssds) {
    auto job = sched.allocate(nranks, /*procs_per_node=*/1, 256_MiB, ssds);
    NVMECR_CHECK(job.ok());
    return std::move(job).value();
  }

  fabric::RackId primary_domain(const JobAllocation& job, uint32_t rank) {
    return cluster.topology().failure_domain(
        job.assignment.ssd_nodes[job.assignment.ssd_of_rank[rank]]);
  }

  void fail_domain(fabric::RackId rack) {
    for (fabric::NodeId n : cluster.storage_nodes()) {
      if (cluster.topology().failure_domain(n) == rack) {
        cluster.storage_ssd(cluster.storage_ssd_index(n)).fail_device();
      }
    }
  }
};

sim::Task<Status> write_file(baselines::StorageClient& c,
                             const std::string& path, uint64_t bytes) {
  auto fd = co_await c.create(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(4_MiB, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.write(*fd, n));
    off += n;
  }
  NVMECR_CO_RETURN_IF_ERROR(co_await c.fsync(*fd));
  co_return co_await c.close(*fd);
}

sim::Task<Status> read_file(baselines::StorageClient& c,
                            const std::string& path, uint64_t bytes) {
  auto fd = co_await c.open_read(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(4_MiB, bytes - off);
    NVMECR_CO_RETURN_IF_ERROR(co_await c.read(*fd, n));
    off += n;
  }
  co_return co_await c.close(*fd);
}

// ---------------------------------------------------------------------------
// Placement invariants

TEST(RedundancyPlacementTest, PartnerAvoidsPrimaryAndComputeDomains) {
  RedundancyFixture f(/*storage_nodes=*/4, /*storage_racks=*/2);
  JobAllocation job = f.alloc(/*nranks=*/4, /*ssds=*/2);
  RedundancyOptions opts;
  opts.scheme = Scheme::kPartner;
  auto plan = redundancy::plan_redundancy(
      f.cluster.topology(), job.assignment, job.rank_nodes,
      f.cluster.storage_nodes(), opts);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  for (uint32_t r = 0; r < 4; ++r) {
    const fabric::NodeId replica =
        plan->assignment.ssd_nodes[plan->assignment.ssd_of_rank[r]];
    const fabric::RackId rd = f.cluster.topology().failure_domain(replica);
    EXPECT_NE(rd, f.primary_domain(job, r)) << "rank " << r;
    EXPECT_NE(rd, f.cluster.topology().failure_domain(job.rank_nodes[r]))
        << "rank " << r;
  }
}

TEST(RedundancyPlacementTest, PartnerNeedsSecondStorageDomain) {
  RedundancyFixture f(4, /*storage_racks=*/1);
  JobAllocation job = f.alloc(4, 2);
  RedundancyOptions opts;
  opts.scheme = Scheme::kPartner;
  auto plan = redundancy::plan_redundancy(
      f.cluster.topology(), job.assignment, job.rank_nodes,
      f.cluster.storage_nodes(), opts);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidArgument);

  // Degraded single-rack mode is available but never co-locates the
  // replica with the primary device.
  opts.allow_same_domain = true;
  plan = redundancy::plan_redundancy(f.cluster.topology(), job.assignment,
                                     job.rank_nodes,
                                     f.cluster.storage_nodes(), opts);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  for (uint32_t r = 0; r < 4; ++r) {
    EXPECT_NE(plan->assignment.ssd_nodes[plan->assignment.ssd_of_rank[r]],
              job.assignment.ssd_nodes[job.assignment.ssd_of_rank[r]]);
  }
}

TEST(RedundancyPlacementTest, XorSetsSpanDistinctDomains) {
  RedundancyFixture f(/*storage_nodes=*/5, /*storage_racks=*/5);
  JobAllocation job = f.alloc(4, 4);
  RedundancyOptions opts;
  opts.scheme = Scheme::kXor;
  opts.xor_set_size = 4;
  auto plan = redundancy::plan_redundancy(
      f.cluster.topology(), job.assignment, job.rank_nodes,
      f.cluster.storage_nodes(), opts);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->set_members.size(), 1u);
  ASSERT_EQ(plan->set_members[0].size(), 4u);

  std::set<fabric::RackId> set_domains;
  for (uint32_t m : plan->set_members[0]) {
    set_domains.insert(f.primary_domain(job, m));
  }
  EXPECT_EQ(set_domains.size(), 4u) << "members must span distinct domains";
  for (uint32_t m : plan->set_members[0]) {
    const fabric::NodeId parity =
        plan->assignment.ssd_nodes[plan->assignment.ssd_of_rank[m]];
    EXPECT_EQ(set_domains.count(f.cluster.topology().failure_domain(parity)),
              0u)
        << "parity of rank " << m << " must sit outside the set's domains";
  }
}

TEST(RedundancyPlacementTest, XorRejectsImpossibleShapes) {
  RedundancyFixture f(4, 2);
  JobAllocation job = f.alloc(4, 4);
  RedundancyOptions opts;
  opts.scheme = Scheme::kXor;
  opts.xor_set_size = 4;  // only 2 storage domains available
  auto plan = redundancy::plan_redundancy(
      f.cluster.topology(), job.assignment, job.rank_nodes,
      f.cluster.storage_nodes(), opts);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidArgument);

  opts.xor_set_size = 3;  // 4 ranks not divisible into sets of 3
  plan = redundancy::plan_redundancy(f.cluster.topology(), job.assignment,
                                     job.rank_nodes,
                                     f.cluster.storage_nodes(), opts);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end recoverability

TEST(RedundancyRecoveryTest, PartnerReplicaSurvivesDomainLoss) {
  RedundancyFixture f(4, 2);
  obs::MetricsRegistry metrics;
  f.cluster.install_observer({nullptr, &metrics});
  JobAllocation job = f.alloc(4, 2);
  nvmecr_rt::NvmecrSystem primary(f.cluster, job, {});
  RedundancyOptions opts;
  opts.scheme = Scheme::kPartner;
  auto dep = redundancy::deploy_redundancy(f.cluster, f.sched, primary, job,
                                           opts);
  ASSERT_TRUE(dep.ok()) << dep.status().to_string();
  redundancy::RedundantSystem& sys = *dep->system;

  std::vector<std::unique_ptr<baselines::StorageClient>> clients;
  f.cluster.engine().run_task([](redundancy::RedundantSystem& s,
                                 std::vector<std::unique_ptr<
                                     baselines::StorageClient>>& cs)
                                  -> sim::Task<void> {
    for (uint32_t r = 0; r < 4; ++r) {
      auto c = co_await s.connect(static_cast<int>(r));
      NVMECR_CHECK(c.ok());
      cs.push_back(std::move(*c));
      EXPECT_TRUE((co_await write_file(*cs.back(), "/ckpt0", 16_MiB)).ok());
      EXPECT_TRUE((co_await write_file(*cs.back(), "/ckpt1", 16_MiB)).ok());
    }
    co_await s.quiesce();
  }(sys, clients));

  // Every file is fully replicated and digest-verified.
  for (uint32_t r = 0; r < 4; ++r) {
    const redundancy::FileManifest* m = sys.manifest(r, "/ckpt1");
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->complete);
    EXPECT_TRUE(m->replica_ok);
    EXPECT_EQ(m->replica_bytes, 16_MiB);
  }
  // Full replication: redundant bytes == primary checkpoint bytes.
  EXPECT_EQ(sys.redundant_bytes(), 4u * 2u * 16_MiB);
  EXPECT_EQ(metrics.find_counter("redundancy.replica_bytes")->value(),
            sys.redundant_bytes());
  EXPECT_EQ(sys.degraded_files(), 0u);

  // Before the fault, recovery serves straight from the fast tier.
  redundancy::Reconstructor recon(sys);
  f.cluster.engine().run_task([](redundancy::Reconstructor& rc)
                                  -> sim::Task<void> {
    auto c = rc.client(1);
    EXPECT_TRUE((co_await read_file(*c, "/ckpt1", 16_MiB)).ok());
  }(recon));
  ASSERT_NE(recon.find_report(1, "/ckpt1"), nullptr);
  EXPECT_EQ(recon.find_report(1, "/ckpt1")->source,
            RecoverySource::kFastTier);

  // *** the rack holding every primary SSD dies ***
  f.fail_domain(f.primary_domain(job, 0));

  f.cluster.engine().run_task([](redundancy::Reconstructor& rc)
                                  -> sim::Task<void> {
    for (uint32_t r = 0; r < 4; ++r) {
      auto c = rc.client(r);
      EXPECT_TRUE((co_await read_file(*c, "/ckpt1", 16_MiB)).ok())
          << "rank " << r;
    }
  }(recon));
  for (uint32_t r = 0; r < 4; ++r) {
    const redundancy::RecoveryReport* rep = recon.find_report(r, "/ckpt1");
    ASSERT_NE(rep, nullptr) << "rank " << r;
    EXPECT_EQ(rep->source, RecoverySource::kPartner) << "rank " << r;
    EXPECT_TRUE(rep->digest_ok) << "rank " << r;
    EXPECT_EQ(rep->bytes, 16_MiB);
    EXPECT_EQ(rep->bytes_read, 16_MiB);
  }
  EXPECT_EQ(metrics.find_counter("redundancy.reconstructions")->value(), 4u);
}

TEST(RedundancyRecoveryTest, XorDecodeRebuildsLostMember) {
  RedundancyFixture f(/*storage_nodes=*/5, /*storage_racks=*/5);
  JobAllocation job = f.alloc(4, 4);
  nvmecr_rt::NvmecrSystem primary(f.cluster, job, {});
  RedundancyOptions opts;
  opts.scheme = Scheme::kXor;
  opts.xor_set_size = 4;
  auto dep = redundancy::deploy_redundancy(f.cluster, f.sched, primary, job,
                                           opts);
  ASSERT_TRUE(dep.ok()) << dep.status().to_string();
  redundancy::RedundantSystem& sys = *dep->system;

  std::vector<std::unique_ptr<baselines::StorageClient>> clients;
  uint64_t total_written = 0;
  f.cluster.engine().run_task([](redundancy::RedundantSystem& s,
                                 std::vector<std::unique_ptr<
                                     baselines::StorageClient>>& cs,
                                 uint64_t& total) -> sim::Task<void> {
    for (uint32_t r = 0; r < 4; ++r) {
      auto c = co_await s.connect(static_cast<int>(r));
      NVMECR_CHECK(c.ok());
      cs.push_back(std::move(*c));
    }
    for (const char* path : {"/ckpt0", "/ckpt1"}) {
      for (uint32_t r = 0; r < 4; ++r) {
        EXPECT_TRUE((co_await write_file(*cs[r], path, 24_MiB)).ok());
        total += 24_MiB;
      }
    }
    co_await s.quiesce();
  }(sys, clients, total_written));

  for (uint32_t r = 0; r < 4; ++r) {
    const redundancy::FileManifest* m = sys.manifest(r, "/ckpt1");
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->complete);
    EXPECT_TRUE(m->parity_ok) << "rank " << r;
  }
  EXPECT_EQ(sys.degraded_files(), 0u);
  // Erasure-coded overhead is a fraction (~1/(K-1)) of full replication.
  EXPECT_GT(sys.redundant_bytes(), 0u);
  EXPECT_LT(sys.redundant_bytes(), total_written / 2);

  // *** rank 0's primary SSD domain dies; the other members survive ***
  f.fail_domain(f.primary_domain(job, 0));

  redundancy::Reconstructor recon(sys);
  f.cluster.engine().run_task([](redundancy::Reconstructor& rc)
                                  -> sim::Task<void> {
    auto lost = rc.client(0);
    EXPECT_TRUE((co_await read_file(*lost, "/ckpt1", 24_MiB)).ok());
    auto survivor = rc.client(1);
    EXPECT_TRUE((co_await read_file(*survivor, "/ckpt1", 24_MiB)).ok());
  }(recon));

  const redundancy::RecoveryReport* rep = recon.find_report(0, "/ckpt1");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->source, RecoverySource::kXor);
  EXPECT_TRUE(rep->digest_ok);
  EXPECT_EQ(rep->bytes, 24_MiB);
  // Decode read the 3 survivors' files plus their parity segments.
  EXPECT_GT(rep->bytes_read, 3u * 24_MiB);
  // A member whose domain survived restores from the fast tier.
  EXPECT_EQ(recon.find_report(1, "/ckpt1")->source,
            RecoverySource::kFastTier);
}

TEST(RedundancyRecoveryTest, NoneFallsBackToOlderPfsCheckpoint) {
  RedundancyFixture f(4, 2);
  JobAllocation job = f.alloc(4, 2);
  nvmecr_rt::NvmecrSystem primary(f.cluster, job, {});
  RedundancyOptions opts;  // Scheme::kNone
  auto dep = redundancy::deploy_redundancy(f.cluster, f.sched, primary, job,
                                           opts);
  ASSERT_TRUE(dep.ok()) << dep.status().to_string();
  redundancy::RedundantSystem& sys = *dep->system;
  baselines::LustreModel pfs(f.cluster);

  std::unique_ptr<baselines::StorageClient> fast, slow;
  f.cluster.engine().run_task(
      [](redundancy::RedundantSystem& s, baselines::LustreModel& p,
         std::unique_ptr<baselines::StorageClient>& fc,
         std::unique_ptr<baselines::StorageClient>& sc) -> sim::Task<void> {
        auto f1 = co_await s.connect(0);
        auto s1 = co_await p.connect(0);
        NVMECR_CHECK(f1.ok() && s1.ok());
        fc = std::move(*f1);
        sc = std::move(*s1);
        // Older checkpoint on the PFS, newest on the fast tier only.
        EXPECT_TRUE((co_await write_file(*sc, "/step0", 8_MiB)).ok());
        EXPECT_TRUE((co_await write_file(*fc, "/step1", 8_MiB)).ok());
      }(sys, pfs, fast, slow));

  f.fail_domain(f.primary_domain(job, 0));

  redundancy::Reconstructor recon(sys);
  auto reconstructed = recon.client(0);
  nvmecr_rt::MultiLevelRouter router(*fast, *slow,
                                     nvmecr_rt::MultiLevelPolicy(2));
  router.set_reconstructed(reconstructed.get());

  f.cluster.engine().run_task([](nvmecr_rt::MultiLevelRouter& rt,
                                 baselines::StorageClient* pfs_client)
                                  -> sim::Task<void> {
    // The newest checkpoint (/step1, fast tier only) is unrecoverable
    // under kNone: both pre-PFS sources in the chain fail — the fast
    // tier lost its device and the reconstruction view has no
    // redundancy stream to rebuild from. (The PFS model is
    // bandwidth-only and does not track namespaces, so "what the PFS
    // holds" is what was written to it: only /step0.)
    const auto chain = rt.recovery_chain();
    NVMECR_CHECK(chain.size() == 3u);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      EXPECT_FALSE((co_await read_file(*chain[i], "/step1", 8_MiB)).ok())
          << "source " << i;
    }
    // Restart therefore falls back to the last tier — the older PFS
    // checkpoint /step0 — and that read succeeds.
    EXPECT_EQ(chain.back(), pfs_client);
    EXPECT_TRUE((co_await read_file(*chain.back(), "/step0", 8_MiB)).ok());
  }(router, slow.get()));
}

// ---------------------------------------------------------------------------
// Multi-level policy/router edges (satellite)

TEST(MultiLevelEdgeTest, IntervalZeroNeverRoutesToPfs) {
  nvmecr_rt::MultiLevelPolicy policy(0);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(policy.is_pfs_checkpoint(i)) << i;
  }
}

TEST(MultiLevelEdgeTest, IntervalOneAlwaysRoutesToPfs) {
  nvmecr_rt::MultiLevelPolicy policy(1);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(policy.is_pfs_checkpoint(i)) << i;
  }
}

TEST(MultiLevelEdgeTest, RecoveryLevelRestoresFromPfsWhenFastTierLost) {
  RedundancyFixture f(4, 1);
  JobAllocation job = f.alloc(1, 1);
  nvmecr_rt::NvmecrSystem fast_sys(f.cluster, job, {});
  baselines::LustreModel pfs(f.cluster);

  std::unique_ptr<baselines::StorageClient> fast, slow;
  f.cluster.engine().run_task(
      [](nvmecr_rt::NvmecrSystem& fs, baselines::LustreModel& p,
         std::unique_ptr<baselines::StorageClient>& fc,
         std::unique_ptr<baselines::StorageClient>& sc) -> sim::Task<void> {
        auto f1 = co_await fs.connect(0);
        auto s1 = co_await p.connect(0);
        NVMECR_CHECK(f1.ok() && s1.ok());
        fc = std::move(*f1);
        sc = std::move(*s1);
        EXPECT_TRUE((co_await write_file(*fc, "/a", 4_MiB)).ok());
        EXPECT_TRUE((co_await write_file(*sc, "/a", 4_MiB)).ok());
      }(fast_sys, pfs, fast, slow));

  nvmecr_rt::MultiLevelRouter router(*fast, *slow,
                                     nvmecr_rt::MultiLevelPolicy(10));
  // Healthy: recovery prefers the fast tier; chain is fast -> pfs.
  EXPECT_EQ(&router.recovery_level(false), fast.get());
  EXPECT_FALSE(router.has_reconstructed());
  EXPECT_EQ(router.recovery_chain().size(), 2u);
  // With a reconstruction view installed it slots in before the PFS.
  baselines::StorageClient* marker = slow.get();
  router.set_reconstructed(marker);
  EXPECT_TRUE(router.has_reconstructed());
  EXPECT_EQ(router.recovery_chain().size(), 3u);
  EXPECT_EQ(&router.recovery_level(true), marker);
  router.set_reconstructed(nullptr);

  // Fast tier dies: recovery_level(true) must serve from the PFS copy.
  f.fail_domain(f.primary_domain(job, 0));
  EXPECT_EQ(&router.recovery_level(true), slow.get());
  f.cluster.engine().run_task([](nvmecr_rt::MultiLevelRouter& rt)
                                  -> sim::Task<void> {
    EXPECT_FALSE(
        (co_await read_file(rt.recovery_level(false), "/a", 4_MiB)).ok());
    EXPECT_TRUE(
        (co_await read_file(rt.recovery_level(true), "/a", 4_MiB)).ok());
  }(router));
}

// ---------------------------------------------------------------------------
// Balancer input validation (satellite)

TEST(BalancerValidationTest, RejectsDegenerateRequests) {
  RedundancyFixture f(4, 2);
  const fabric::Topology& topo = f.cluster.topology();

  nvmecr_rt::BalancerRequest req;
  req.storage_nodes = f.cluster.storage_nodes();
  auto r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);  // no ranks

  req.rank_nodes = {f.cluster.compute_nodes()[0]};
  req.storage_nodes.clear();
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);  // no storage

  req.storage_nodes = f.cluster.storage_nodes();
  req.num_ssds = 0;
  req.min_procs_per_ssd = 0;
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);  // 0/0 sizing

  req.min_procs_per_ssd = 56;
  req.rank_nodes = {topo.node_count() + 5};
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);  // out of range

  req.rank_nodes = {f.cluster.compute_nodes()[0]};
  r = nvmecr_rt::StorageBalancer::assign(topo, req);
  EXPECT_TRUE(r.ok()) << r.status().to_string();  // sane request passes
}

// ---------------------------------------------------------------------------
// CacheStats -> MetricsRegistry (satellite)

TEST(CacheMetricsTest, CacheStatsExportToRegistry) {
  RedundancyFixture f(4, 1);
  obs::MetricsRegistry metrics;
  JobAllocation job = f.alloc(1, 1);
  nvmecr_rt::NvmecrSystem sys(f.cluster, job, {});

  f.cluster.engine().run_task(
      [](RedundancyFixture& fx, nvmecr_rt::NvmecrSystem& s,
         obs::MetricsRegistry& reg) -> sim::Task<void> {
        auto conn = co_await s.connect(0);
        NVMECR_CHECK(conn.ok());
        auto inner = std::move(*conn);
        nvmecr_rt::CachedClient cache(fx.cluster.engine(), std::move(inner),
                                      /*capacity_bytes=*/64_MiB);
        cache.set_observer({nullptr, &reg});

        // Warm write populates the cache; the read-back is a pure hit.
        EXPECT_TRUE((co_await write_file(cache, "/warm", 8_MiB)).ok());
        EXPECT_TRUE((co_await read_file(cache, "/warm", 8_MiB)).ok());
        EXPECT_EQ(cache.stats().hit_bytes, 8_MiB);
        EXPECT_EQ(reg.find_counter("cache.hit_bytes")->value(), 8_MiB);
        EXPECT_EQ(reg.find_counter("cache.miss_bytes")->value(), 0u);
        EXPECT_EQ(reg.find_gauge("cache.resident_bytes")->value(),
                  static_cast<double>(8_MiB));

        // A big file pushes the warm one out: eviction shows up too.
        EXPECT_TRUE((co_await write_file(cache, "/big", 60_MiB)).ok());
        EXPECT_GE(reg.find_counter("cache.evictions")->value(), 1u);
        EXPECT_EQ(reg.find_counter("cache.evictions")->value(),
                  cache.stats().evictions);

        // A cold read after eviction is a miss.
        EXPECT_TRUE((co_await read_file(cache, "/warm", 8_MiB)).ok());
        EXPECT_EQ(reg.find_counter("cache.miss_bytes")->value(), 8_MiB);
        EXPECT_EQ(reg.find_gauge("cache.resident_bytes")->value(),
                  static_cast<double>(cache.stats().resident_bytes));
      }(f, sys, metrics));
}

}  // namespace
}  // namespace nvmecr
